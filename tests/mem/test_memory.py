"""Memory bank + full/empty bit semantics (the Table 2 matrix)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.traps import TrapKind
from repro.errors import MemoryError_
from repro.isa.instructions import LOAD_FLAVORS, Opcode, STORE_FLAVORS
from repro.mem.memory import Memory


@pytest.fixture
def memory():
    return Memory(1024)


class TestRawAccess:
    def test_roundtrip(self, memory):
        memory.write_word(64, 0xDEADBEEF)
        assert memory.read_word(64) == 0xDEADBEEF

    def test_masks_to_32_bits(self, memory):
        memory.write_word(0, 0x1FFFFFFFF)
        assert memory.read_word(0) == 0xFFFFFFFF

    def test_misaligned_raises(self, memory):
        with pytest.raises(MemoryError_):
            memory.read_word(2)

    def test_out_of_range_raises(self, memory):
        with pytest.raises(MemoryError_):
            memory.read_word(4096)

    def test_banked_base(self):
        bank = Memory(16, base=0x1000)
        bank.write_word(0x1004, 7)
        assert bank.read_word(0x1004) == 7
        assert bank.contains(0x1004)
        assert not bank.contains(0x0FFC)
        with pytest.raises(MemoryError_):
            bank.read_word(0x0FFC)

    def test_defaults_to_full(self, memory):
        assert memory.is_full(0)

    @given(st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_write_read_property(self, index, value):
        memory = Memory(256)
        memory.write_word(index * 4, value)
        assert memory.read_word(index * 4) == value


class TestTable2LoadMatrix:
    """Every load flavor against both full/empty states (Table 2)."""

    @pytest.mark.parametrize("opcode", sorted(LOAD_FLAVORS, key=int))
    def test_full_location_always_loads(self, memory, opcode):
        flavor = LOAD_FLAVORS[opcode]
        memory.write_word(40, 123)
        value, was_full, trap = memory.sync_load(40, flavor)
        assert value == 123
        assert was_full
        assert trap is None
        if flavor.set_empty and not flavor.raw:
            assert not memory.is_full(40)
        else:
            assert memory.is_full(40)

    @pytest.mark.parametrize("opcode", sorted(LOAD_FLAVORS, key=int))
    def test_empty_location(self, memory, opcode):
        flavor = LOAD_FLAVORS[opcode]
        memory.write_word(40, 77)
        memory.set_full(40, False)
        value, was_full, trap = memory.sync_load(40, flavor)
        assert not was_full
        if flavor.trap_on_empty:
            assert trap is TrapKind.EMPTY_LOAD
            # The access did not complete: state untouched.
            assert not memory.is_full(40)
        else:
            assert trap is None
            assert value == 77


class TestTable2StoreMatrix:
    @pytest.mark.parametrize("opcode", sorted(STORE_FLAVORS, key=int))
    def test_empty_location_always_stores(self, memory, opcode):
        flavor = STORE_FLAVORS[opcode]
        memory.set_full(40, False)
        was_full, trap = memory.sync_store(40, 55, flavor)
        assert not was_full
        assert trap is None
        assert memory.read_word(40) == 55
        if flavor.set_full:
            assert memory.is_full(40)
        elif not flavor.raw:
            assert not memory.is_full(40)

    @pytest.mark.parametrize("opcode", sorted(STORE_FLAVORS, key=int))
    def test_full_location(self, memory, opcode):
        flavor = STORE_FLAVORS[opcode]
        memory.write_word(40, 1)
        was_full, trap = memory.sync_store(40, 99, flavor)
        assert was_full
        if flavor.trap_on_full and not flavor.raw:
            assert trap is TrapKind.FULL_STORE
            assert memory.read_word(40) == 1   # store did not complete
        else:
            assert trap is None
            assert memory.read_word(40) == 99


class TestProducerConsumer:
    """The I-structure idiom: stf fills, lde empties (Section 3.3)."""

    def test_handoff(self, memory):
        produce = STORE_FLAVORS[Opcode.STFTT]   # store, set full, trap if full
        consume = LOAD_FLAVORS[Opcode.LDETT]    # load, set empty, trap if empty

        memory.set_full(80, False)
        # Consumer arrives first: traps.
        _, _, trap = memory.sync_load(80, consume)
        assert trap is TrapKind.EMPTY_LOAD
        # Producer fills.
        _, trap = memory.sync_store(80, 42, produce)
        assert trap is None
        # Consumer retries: gets the value and re-empties the slot.
        value, _, trap = memory.sync_load(80, consume)
        assert trap is None and value == 42
        assert not memory.is_full(80)
        # Producer can fill again (the slot is a one-word channel).
        _, trap = memory.sync_store(80, 43, produce)
        assert trap is None

    def test_double_produce_traps(self, memory):
        produce = STORE_FLAVORS[Opcode.STFTT]
        memory.set_full(80, False)
        memory.sync_store(80, 1, produce)
        _, trap = memory.sync_store(80, 2, produce)
        assert trap is TrapKind.FULL_STORE
