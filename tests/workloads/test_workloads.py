"""Workload correctness: compiled results match native references and the
reference Mul-T interpreter (differential testing)."""

import pytest

from repro import workloads
from repro.lang.interp import interpret
from repro.lang.run import run_mult


SMALL_ARGS = {
    "fib": (8,),
    "factor": (2, 21),
    "queens": (4,),
    "speech": (4, 4),
}

SMALL_EXPECTED = {
    "fib": 21,
    "factor": None,    # computed below
    "queens": 2,
    "speech": None,
}


def small_args(name):
    return SMALL_ARGS[name]


def expected(module, args):
    if module.NAME == "fib":
        return module.reference(args[0])
    if module.NAME == "factor":
        return module.reference(args[0], args[1] - args[0] + 1)
    if module.NAME == "queens":
        return module.reference(args[0])
    return module.reference(*args)


@pytest.mark.parametrize("module", workloads.ALL, ids=lambda m: m.NAME)
class TestAgainstNativeReference:
    def test_sequential(self, module):
        args = small_args(module.NAME)
        result = run_mult(module.source(), mode="sequential", args=args)
        assert result.value == expected(module, args)

    def test_eager_two_cpus(self, module):
        args = small_args(module.NAME)
        result = run_mult(module.source(), mode="eager", processors=2,
                          args=args)
        assert result.value == expected(module, args)

    def test_lazy_four_cpus(self, module):
        args = small_args(module.NAME)
        result = run_mult(module.source(), mode="lazy", processors=4,
                          args=args)
        assert result.value == expected(module, args)


@pytest.mark.parametrize("module", workloads.ALL, ids=lambda m: m.NAME)
class TestAgainstInterpreter:
    def test_interpreter_agrees(self, module):
        args = small_args(module.NAME)
        interp_value, _ = interpret(module.source(), args=args)
        compiled = run_mult(module.source(), mode="sequential", args=args)
        assert compiled.value == interp_value

    def test_interpreter_matches_native(self, module):
        args = small_args(module.NAME)
        interp_value, _ = interpret(module.source(), args=args)
        assert interp_value == expected(module, args)


class TestDefaultSizes:
    def test_default_args_exist(self):
        for module in workloads.ALL:
            assert module.args()
            assert module.reference() is not None

    def test_lookup(self):
        assert workloads.get("fib").NAME == "fib"
        with pytest.raises(KeyError):
            workloads.get("nope")
