"""k-ary n-cube topology and contention-network tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.net.network import Network, build_network
from repro.net.topology import KAryNCube


class TestTopology:
    def test_node_count(self):
        assert KAryNCube(3, 4).num_nodes == 64

    def test_coordinates_roundtrip(self):
        topo = KAryNCube(3, 5)
        for node in range(topo.num_nodes):
            assert topo.node_at(topo.coordinates(node)) == node

    def test_distance_self_is_zero(self):
        topo = KAryNCube(2, 4)
        assert topo.distance(5, 5) == 0

    def test_distance_neighbors(self):
        topo = KAryNCube(2, 4)
        assert topo.distance(0, 1) == 1
        assert topo.distance(0, 4) == 1  # next row

    def test_route_length_equals_distance(self):
        topo = KAryNCube(2, 5)
        for src in (0, 7, 24):
            for dst in (0, 3, 13, 24):
                assert len(topo.route(src, dst)) == topo.distance(src, dst)

    def test_route_is_dimension_ordered(self):
        topo = KAryNCube(2, 4)
        links = topo.route(0, 15)  # (0,0) -> (3,3)
        axes = [axis for _node, axis, _d in links]
        assert axes == sorted(axes)

    def test_fitting(self):
        topo = KAryNCube.fitting(10, dim=2)
        assert topo.num_nodes >= 10
        assert topo.radix == 4

    def test_average_distance_close_to_nk_over_3(self):
        topo = KAryNCube(3, 20)
        assert topo.average_distance() == pytest.approx(20, rel=0.05)

    def test_degenerate_raises(self):
        with pytest.raises(ConfigError):
            KAryNCube(0, 4)

    @given(st.integers(min_value=1, max_value=3),
           st.integers(min_value=2, max_value=6),
           st.data())
    def test_distance_symmetric(self, dim, radix, data):
        topo = KAryNCube(dim, radix)
        src = data.draw(st.integers(0, topo.num_nodes - 1))
        dst = data.draw(st.integers(0, topo.num_nodes - 1))
        assert topo.distance(src, dst) == topo.distance(dst, src)

    @given(st.integers(min_value=1, max_value=3),
           st.integers(min_value=2, max_value=6),
           st.data())
    def test_triangle_inequality(self, dim, radix, data):
        topo = KAryNCube(dim, radix)
        nodes = [data.draw(st.integers(0, topo.num_nodes - 1))
                 for _ in range(3)]
        a, b, c = nodes
        assert topo.distance(a, c) <= topo.distance(a, b) + topo.distance(b, c)


class TestNetwork:
    def test_local_message_is_free(self):
        net = build_network(4)
        assert net.send(0, 0, 4, 100) == 100

    def test_latency_hops_plus_size(self):
        net = Network(KAryNCube(2, 4), hop_cycles=1)
        hops = net.topology.distance(0, 15)
        assert net.send(0, 15, 4, 0) == hops + 4

    def test_contention_delays_second_message(self):
        net = Network(KAryNCube(1, 8))
        first = net.send(0, 7, 8, 0)
        second = net.send(0, 7, 8, 0)
        assert second > first
        assert net.stats.contention_cycles > 0

    def test_disjoint_paths_no_contention(self):
        net = Network(KAryNCube(2, 4))
        net.send(0, 3, 4, 0)     # row 0
        net.send(12, 15, 4, 0)   # row 3
        assert net.stats.contention_cycles == 0

    def test_round_trip(self):
        net = Network(KAryNCube(1, 4))
        done = net.round_trip(0, 3, 2, 6, 0, service_cycles=10)
        # 3 hops + 2 flits out, 10 service, 3 hops + 6 flits back.
        assert done == (3 + 2) + 10 + (3 + 6)

    def test_stats_accumulate(self):
        net = build_network(9)
        net.send(0, 8, 4, 0)
        assert net.stats.messages == 1
        assert net.stats.average_latency > 0
        assert net.stats.flit_hops == net.stats.total_hops * 4

    def test_link_frees_over_time(self):
        net = Network(KAryNCube(1, 4))
        net.send(0, 1, 4, 0)
        # Much later, the link is free again: no contention.
        before = net.stats.contention_cycles
        net.send(0, 1, 4, 1000)
        assert net.stats.contention_cycles == before
