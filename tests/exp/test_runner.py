"""The sweep runner: pool/serial parity, caching, dedupe, typed
failures, timeout + bounded retry."""

import os
import time

import pytest

from repro.exp.cache import ResultCache
from repro.exp.job import CallJob, Job
from repro.exp.runner import JobFailed, JobResult, run_jobs
from repro.machine.config import MachineConfig
from repro import workloads

FIB = workloads.get("fib").source()


def fib_job(processors=1, n=7, **overrides):
    kwargs = dict(
        key=("t", "fib", processors), source=FIB,
        config=MachineConfig(num_processors=processors), args=(n,))
    kwargs.update(overrides)
    return Job(**kwargs)


# Module-level call targets: the serial path resolves them through
# ``importlib`` just like a worker would.
def add(a, b):
    return a + b


def boom():
    raise ValueError("deliberate")


def sleep_once_then_add(marker, a, b):
    """Times out on the first attempt, succeeds on the retry."""
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("attempted\n")
        time.sleep(5)
    return a + b


def call_job(func, key=("call",), **kwargs):
    return CallJob(key, __name__, func, kwargs=kwargs)


class TestSerialRunner:
    def test_results_in_submission_order(self):
        jobs = [fib_job(1), fib_job(2)]
        sweep = run_jobs(jobs)
        assert [o.key for o in sweep] == [j.key for j in jobs]
        assert all(isinstance(o, JobResult) and o.ok for o in sweep)
        assert sweep.outcomes[0].value == 13
        assert sweep.outcomes[0].cycles > sweep.outcomes[1].cycles

    def test_report_captured(self):
        (outcome,) = run_jobs([fib_job(2)])
        report = outcome.report
        assert report["config"]["num_processors"] == 2
        assert report["stats"]["instructions"] > 0
        assert "scheduler" in report["components"]

    def test_call_jobs(self):
        (outcome,) = run_jobs([call_job("add", a=2, b=3)])
        assert outcome.ok and outcome.value == 5

    def test_failure_is_typed_not_raised(self):
        sweep = run_jobs([call_job("boom"), call_job("add", a=1, b=1)])
        failed, ok = sweep.outcomes
        assert isinstance(failed, JobFailed)
        assert failed.kind == "exception"
        assert "deliberate" in failed.message
        assert ok.value == 2
        assert sweep.summary()["failed"] == 1

    def test_expect_mismatch_is_workload_check_error(self):
        (outcome,) = run_jobs([fib_job(expect=999)])
        assert isinstance(outcome, JobFailed)
        assert outcome.kind == "WorkloadCheckError"
        assert outcome.context["expected"] == "999"
        assert outcome.context["actual"] == "13"
        assert outcome.context["config"]["num_processors"] == 1

    def test_simulation_error_is_typed(self):
        (outcome,) = run_jobs([fib_job(max_cycles=50)])
        assert isinstance(outcome, JobFailed)
        assert outcome.kind == "SimulationError"


class TestCacheAndDedupe:
    def test_cache_roundtrip_and_hit_counter(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        first = run_jobs([fib_job()], cache=cache)
        assert first.summary() == {
            "jobs": 1, "executed": 1, "cache_hits": 0, "deduped": 0,
            "retries": 0, "failed": 0}
        second = run_jobs([fib_job()], cache=cache)
        assert second.summary()["cache_hits"] == 1
        assert second.summary()["executed"] == 0
        assert second.outcomes[0].cached
        assert second.outcomes[0].value == first.outcomes[0].value
        assert second.outcomes[0].cycles == first.outcomes[0].cycles

    def test_force_reexecutes(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        run_jobs([fib_job()], cache=cache)
        forced = run_jobs([fib_job()], cache=cache, force=True)
        assert forced.summary()["executed"] == 1
        assert forced.summary()["cache_hits"] == 0

    def test_failures_not_cached(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        run_jobs([fib_job(expect=999)], cache=cache)
        again = run_jobs([fib_job(expect=999)], cache=cache)
        assert again.summary()["executed"] == 1     # no stale failure hit

    def test_identical_cells_execute_once(self):
        sweep = run_jobs([fib_job(key=("a",)), fib_job(key=("b",))])
        summary = sweep.summary()
        assert summary == {
            "jobs": 2, "executed": 1, "cache_hits": 0, "deduped": 1,
            "retries": 0, "failed": 0}
        a, b = sweep.outcomes
        assert a.cycles == b.cycles and a.key != b.key

    def test_uncacheable_jobs_bypass_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        run_jobs([call_job("add", a=1, b=2)], cache=cache)
        again = run_jobs([call_job("add", a=1, b=2)], cache=cache)
        assert again.summary()["executed"] == 1
        assert cache.counters()["writes"] == 0


class TestPoolParity:
    def test_pool_matches_serial(self, tmp_path):
        jobs = [fib_job(n) for n in (1, 2, 4)]
        serial = run_jobs(jobs)
        pooled = run_jobs([fib_job(n) for n in (1, 2, 4)], pool_size=3)
        assert ([(o.key, o.value, o.cycles) for o in serial]
                == [(o.key, o.value, o.cycles) for o in pooled])

    def test_pool_fills_cache_for_serial(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        run_jobs([fib_job(1), fib_job(2)], pool_size=2, cache=cache)
        resumed = run_jobs([fib_job(1), fib_job(2)], cache=cache)
        assert resumed.summary()["cache_hits"] == 2

    def test_pool_failure_stays_typed(self):
        sweep = run_jobs([fib_job(expect=999), fib_job(2)], pool_size=2)
        failed = [o for o in sweep if not o.ok]
        assert len(failed) == 1
        assert failed[0].kind == "WorkloadCheckError"


@pytest.mark.skipif(not hasattr(__import__("signal"), "SIGALRM"),
                    reason="needs SIGALRM")
class TestTimeoutAndRetry:
    def test_timeout_becomes_failed_cell(self, tmp_path):
        marker = str(tmp_path / "marker")
        job = call_job("sleep_once_then_add", marker=marker, a=1, b=1)
        sweep = run_jobs([job], timeout_s=1, retries=0)
        (outcome,) = sweep.outcomes
        assert isinstance(outcome, JobFailed)
        assert outcome.kind == "timeout"

    def test_bounded_retry_recovers(self, tmp_path):
        marker = str(tmp_path / "marker")
        job = call_job("sleep_once_then_add", marker=marker, a=1, b=1)
        sweep = run_jobs([job], timeout_s=1, retries=1)
        (outcome,) = sweep.outcomes
        assert outcome.ok and outcome.value == 2
        assert outcome.attempts == 2
        assert sweep.summary()["retries"] == 1


class TestResumeAfterInterrupt:
    def test_partial_cache_runs_only_missing_cells(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        grid = lambda: [fib_job(n) for n in (1, 2, 4)]     # noqa: E731
        run_jobs(grid()[:2], cache=cache)                  # "interrupted"
        resumed = run_jobs(grid(), cache=cache)
        summary = resumed.summary()
        assert summary["cache_hits"] == 2
        assert summary["executed"] == 1
        assert all(o.ok for o in resumed)
