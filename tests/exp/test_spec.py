"""Sweep specs and the deterministic merged output."""

import json

import pytest

from repro.errors import SweepSpecError
from repro.exp.runner import run_jobs
from repro.exp.spec import (
    expand_spec, load_spec, merged_output, render_output, validate_spec,
)


def smoke_spec():
    return {
        "name": "smoke",
        "grid": {
            "programs": ["fib"],
            "systems": ["APRIL", "Apr-lazy"],
            "cpus": [1, 2],
            "args": {"fib": [7]},
        },
    }


class TestValidation:
    def test_good_spec_passes(self):
        validate_spec(smoke_spec())

    @pytest.mark.parametrize("mutate, fragment", [
        (lambda s: s.pop("grid"), "grid"),
        (lambda s: s["grid"].update(programs=[]), "programs"),
        (lambda s: s["grid"].update(programs=["nope"]), "unknown program"),
        (lambda s: s["grid"].update(systems=["VAX"]), "unknown system"),
        (lambda s: s["grid"].update(cpus=[0]), "cpus"),
        (lambda s: s["grid"].update(cpus="4"), "cpus"),
        (lambda s: s["grid"].update(args=[1]), "args"),
        (lambda s: s.update(config=[1]), "config"),
    ])
    def test_bad_specs_raise(self, mutate, fragment):
        spec = smoke_spec()
        mutate(spec)
        with pytest.raises(SweepSpecError, match=fragment):
            validate_spec(spec)

    def test_load_spec_bad_json(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("{nope")
        with pytest.raises(SweepSpecError, match="valid JSON"):
            load_spec(str(path))

    def test_load_spec_missing_file(self, tmp_path):
        with pytest.raises(SweepSpecError, match="cannot read"):
            load_spec(str(tmp_path / "absent.json"))

    def test_load_spec_roundtrip(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(smoke_spec()))
        assert load_spec(str(path))["name"] == "smoke"


class TestExpansion:
    def test_grid_expansion_order(self):
        jobs = expand_spec(smoke_spec())
        assert [job.key for job in jobs] == [
            ("smoke", "fib", "APRIL", "parallel", 1),
            ("smoke", "fib", "APRIL", "parallel", 2),
            ("smoke", "fib", "Apr-lazy", "parallel", 1),
            ("smoke", "fib", "Apr-lazy", "parallel", 2),
        ]
        assert jobs[0].args == (7,)
        assert jobs[1].config.num_processors == 2
        assert jobs[2].mode == "lazy"

    def test_config_overrides_reach_cells(self):
        spec = smoke_spec()
        spec["config"] = {"touch_spin_limit": 0}
        jobs = expand_spec(spec)
        assert all(job.config.touch_spin_limit == 0 for job in jobs)

    def test_max_cycles(self):
        spec = smoke_spec()
        spec["max_cycles"] = 1234
        assert expand_spec(spec)[0].max_cycles == 1234


class TestMergedOutput:
    def test_byte_stable_across_pool_sizes(self):
        spec = smoke_spec()
        serial = render_output(merged_output(spec, run_jobs(
            expand_spec(spec))))
        pooled = render_output(merged_output(spec, run_jobs(
            expand_spec(spec), pool_size=2)))
        # Dedupe counts differ by schedule but cells must not; compare
        # the cell arrays byte-for-byte.
        assert (json.loads(serial)["cells"] == json.loads(pooled)["cells"])

    def test_layout(self):
        spec = smoke_spec()
        spec["grid"]["cpus"] = [1]
        spec["grid"]["systems"] = ["APRIL"]
        merged = merged_output(spec, run_jobs(expand_spec(spec)))
        assert merged["schema"] == "april-sweep/1"
        (cell,) = merged["cells"]
        assert cell["status"] == "ok"
        assert cell["value"] == 13
        assert cell["cycles"] > 0
        assert len(cell["hash"]) == 64
        assert merged["summary"]["executed"] == 1

    def test_failed_cell_recorded_not_raised(self):
        spec = smoke_spec()
        spec["grid"]["cpus"] = [1]
        spec["grid"]["systems"] = ["APRIL"]
        spec["max_cycles"] = 50                     # guaranteed blowout
        merged = merged_output(spec, run_jobs(expand_spec(spec)))
        (cell,) = merged["cells"]
        assert cell["status"] == "failed"
        assert cell["kind"] == "SimulationError"
        assert merged["summary"]["failed"] == 1

    def test_render_output_canonical(self):
        spec = smoke_spec()
        spec["grid"]["cpus"] = [1]
        spec["grid"]["systems"] = ["APRIL"]
        sweep = run_jobs(expand_spec(spec))
        text = render_output(merged_output(spec, sweep))
        assert text.endswith("\n")
        assert text == render_output(merged_output(spec, sweep))
        assert json.loads(text)["name"] == "smoke"
