"""Job specs: content hashing, payloads, pickling."""

import pickle

import pytest

from repro.exp.job import SCHEMA_VERSION, CallJob, Job, canonical_json
from repro.machine.config import MachineConfig
from repro import workloads

FIB = workloads.get("fib").source()


def fib_job(**overrides):
    kwargs = dict(key=("t", "fib"), source=FIB, mode="eager",
                  config=MachineConfig(num_processors=2), args=(7,))
    kwargs.update(overrides)
    return Job(**kwargs)


class TestContentHash:
    def test_stable_across_instances(self):
        assert fib_job().content_hash() == fib_job().content_hash()

    def test_stable_across_compile_order(self):
        # Gensym label names depend on how many programs compiled
        # earlier in the process; the hash must not.
        first = fib_job().content_hash()
        Job(("other",), workloads.get("queens").source()).content_hash()
        assert fib_job().content_hash() == first

    def test_key_not_part_of_hash(self):
        assert (fib_job(key=("a",)).content_hash()
                == fib_job(key=("b",)).content_hash())

    def test_config_knob_changes_hash(self):
        base = fib_job()
        other = fib_job(config=MachineConfig(num_processors=4))
        assert base.content_hash() != other.content_hash()
        knob = fib_job(config=MachineConfig(num_processors=2,
                                            touch_spin_limit=0))
        assert base.content_hash() != knob.content_hash()

    def test_args_and_budget_change_hash(self):
        base = fib_job()
        assert base.content_hash() != fib_job(args=(8,)).content_hash()
        assert (base.content_hash()
                != fib_job(max_cycles=1000).content_hash())

    def test_mode_changes_hash_via_compiled_words(self):
        assert (fib_job(mode="eager").content_hash()
                != fib_job(mode="sequential").content_hash())

    def test_schema_version_in_hash(self, monkeypatch):
        base = fib_job().content_hash()
        monkeypatch.setattr("repro.exp.job.SCHEMA_VERSION",
                            SCHEMA_VERSION + 1)
        assert fib_job().content_hash() != base

    def test_source_reformat_same_words_same_hash(self):
        # Same program, different whitespace: assembles to identical
        # words, so cached results remain valid.
        reformatted = FIB.replace("\n", "\n ")
        assert (fib_job().content_hash()
                == fib_job(source=reformatted).content_hash())


class TestPayloadAndPickle:
    def test_payload_is_plain_data(self):
        payload = fib_job(expect=13).payload()
        canonical_json(payload)          # JSON-serializable
        assert payload["kind"] == "mult"
        assert payload["args"] == [7]
        assert payload["expect"] == 13
        assert payload["config"]["num_processors"] == 2

    def test_pickle_drops_compiled_program(self):
        job = fib_job()
        job.compiled()
        clone = pickle.loads(pickle.dumps(job))
        assert clone._compiled is None
        assert clone.content_hash() == job.content_hash()

    def test_label(self):
        assert fib_job(key=("table3", "fib", 4)).label == "table3/fib/4"

    def test_scalar_key_wrapped(self):
        assert fib_job(key="solo").key == ("solo",)


class TestCallJob:
    def test_hash_covers_target(self):
        a = CallJob(("b",), "mod", "f", kwargs={"quick": True})
        b = CallJob(("b",), "mod", "f", kwargs={"quick": False})
        c = CallJob(("b",), "mod", "g", kwargs={"quick": True})
        assert len({a.content_hash(), b.content_hash(),
                    c.content_hash()}) == 3

    def test_not_cacheable_by_default(self):
        assert CallJob(("b",), "mod", "f").cacheable is False
        assert fib_job().cacheable is True

    def test_payload(self):
        payload = CallJob(("b",), "mod", "f", kwargs={"x": 1}).payload()
        assert payload == {"kind": "call", "module": "mod", "func": "f",
                           "kwargs": {"x": 1}}


def test_mult_and_call_hashes_distinct():
    # Different kinds can never collide on the schema field layout.
    assert fib_job().content_hash() != CallJob(
        ("t", "fib"), "mod", "f").content_hash()


def test_canonical_json_is_byte_stable():
    assert (canonical_json({"b": 1, "a": [1, 2]})
            == '{"a":[1,2],"b":1}')
    with pytest.raises(TypeError):
        canonical_json({"bad": object()})
