"""The content-addressed on-disk result cache."""

import json
import os

from repro.exp.cache import ResultCache, default_cache, default_cache_dir


def _plant(cache, content_hash, text):
    """Write raw text at the sharded location for ``content_hash``."""
    path = cache.path_for(content_hash)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as handle:
        handle.write(text)
    return path


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        payload = {"status": "ok", "value": 13, "cycles": 1234}
        path = cache.put("abc123", payload)
        assert os.path.exists(path)
        assert cache.get("abc123") == payload
        assert cache.counters() == {"hits": 1, "misses": 0, "writes": 1,
                                    "migrated": 0, "dropped": 0}

    def test_missing_entry_is_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.get("nope") is None
        assert cache.counters()["misses"] == 1

    def test_corrupt_entry_is_miss_and_unlinked(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        path = _plant(cache, "bad", "{truncated")
        assert cache.get("bad") is None
        assert not os.path.exists(path)
        assert cache.counters()["dropped"] == 1

    def test_non_dict_entry_is_miss_and_unlinked(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        path = _plant(cache, "list", json.dumps([1, 2]))
        assert cache.get("list") is None
        assert not os.path.exists(path)
        assert cache.counters()["dropped"] == 1

    def test_corrupt_entry_recomputed_roundtrip(self, tmp_path):
        """A poisoned hash is usable again right after the miss."""
        cache = ResultCache(str(tmp_path))
        _plant(cache, "h", "not json at all")
        assert cache.get("h") is None
        cache.put("h", {"status": "ok", "value": 7})
        assert cache.get("h")["value"] == 7

    def test_put_creates_root(self, tmp_path):
        cache = ResultCache(str(tmp_path / "deep" / "cache"))
        cache.put("k", {"status": "ok"})
        assert cache.get("k") == {"status": "ok"}

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("k", {"status": "ok"})
        shard = os.path.dirname(cache.path_for("k"))
        assert [name for name in os.listdir(shard)
                if ".tmp" in name] == []

    def test_overwrite(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("k", {"status": "ok", "value": 1})
        cache.put("k", {"status": "ok", "value": 2})
        assert cache.get("k")["value"] == 2


class TestSharding:
    def test_path_is_sharded_by_hash_prefix(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.path_for("abcdef") == os.path.join(
            str(tmp_path), "ab", "abcdef.json")
        assert cache.legacy_path_for("abcdef") == os.path.join(
            str(tmp_path), "abcdef.json")

    def test_put_lands_in_shard_directory(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("deadbeef", {"status": "ok"})
        assert os.path.exists(
            os.path.join(str(tmp_path), "de", "deadbeef.json"))
        assert not os.path.exists(
            os.path.join(str(tmp_path), "deadbeef.json"))

    def test_flat_legacy_entry_is_read_and_migrated(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        payload = {"status": "ok", "value": 99}
        flat = cache.legacy_path_for("cafe01")
        with open(flat, "w") as handle:
            json.dump(payload, handle)
        assert cache.get("cafe01") == payload
        # Lazily migrated: sharded file exists, flat file is gone.
        assert os.path.exists(cache.path_for("cafe01"))
        assert not os.path.exists(flat)
        assert cache.counters()["migrated"] == 1
        # Second read comes straight from the shard.
        assert cache.get("cafe01") == payload
        assert cache.counters()["hits"] == 2
        assert cache.counters()["migrated"] == 1

    def test_sharded_entry_wins_over_flat(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        with open(cache.legacy_path_for("k"), "w") as handle:
            json.dump({"status": "ok", "value": "old"}, handle)
        cache.put("k", {"status": "ok", "value": "new"})
        assert cache.get("k")["value"] == "new"
        assert cache.counters()["migrated"] == 0


class TestDefaults:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "mine"))
        assert default_cache_dir() == str(tmp_path / "mine")
        assert default_cache().root == str(tmp_path / "mine")

    def test_default_location(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_dir() == os.path.join("results", "cache")
