"""The content-addressed on-disk result cache."""

import json
import os

from repro.exp.cache import ResultCache, default_cache, default_cache_dir


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        payload = {"status": "ok", "value": 13, "cycles": 1234}
        path = cache.put("abc123", payload)
        assert os.path.exists(path)
        assert cache.get("abc123") == payload
        assert cache.counters() == {"hits": 1, "misses": 0, "writes": 1}

    def test_missing_entry_is_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.get("nope") is None
        assert cache.counters()["misses"] == 1

    def test_corrupt_entry_is_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        with open(cache.path_for("bad"), "w") as handle:
            handle.write("{truncated")
        assert cache.get("bad") is None

    def test_non_dict_entry_is_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        with open(cache.path_for("list"), "w") as handle:
            json.dump([1, 2], handle)
        assert cache.get("list") is None

    def test_put_creates_root(self, tmp_path):
        cache = ResultCache(str(tmp_path / "deep" / "cache"))
        cache.put("k", {"status": "ok"})
        assert cache.get("k") == {"status": "ok"}

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("k", {"status": "ok"})
        assert [name for name in os.listdir(str(tmp_path))
                if ".tmp" in name] == []

    def test_overwrite(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("k", {"status": "ok", "value": 1})
        cache.put("k", {"status": "ok", "value": 2})
        assert cache.get("k")["value"] == 2


class TestDefaults:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "mine"))
        assert default_cache_dir() == str(tmp_path / "mine")
        assert default_cache().root == str(tmp_path / "mine")

    def test_default_location(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_dir() == os.path.join("results", "cache")
