"""Analytical model tests: Table 4, Equation 1, Figure 5 claims."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.model import cache_model, figure5, network_model
from repro.model.params import ModelParams
from repro.model.utilization import (
    equation1, saturation_utilization, solve, utilization_curve,
)


class TestParams:
    def test_table4_derived_values(self):
        params = ModelParams()
        assert params.avg_hops == 20            # nk/3
        assert params.base_round_trip == 55     # the paper's 55 cycles
        assert params.cache_blocks == 4096      # 64KB / 16B

    def test_render_table4_mentions_every_row(self):
        text = ModelParams().render_table4()
        for fragment in ("10 cycles", "20", "2%", "16 bytes",
                         "250 blocks", "64 Kbytes"):
            assert fragment in text

    def test_validation(self):
        with pytest.raises(ConfigError):
            ModelParams(network_radix=1)
        with pytest.raises(ConfigError):
            ModelParams(fixed_miss_rate=1.5)

    def test_replace(self):
        params = ModelParams().replace(context_switch=4)
        assert params.context_switch == 4
        assert params.memory_latency == 10


class TestCacheModel:
    def test_single_thread_is_fixed_rate(self):
        params = ModelParams()
        assert cache_model.miss_rate(params, 1) == params.fixed_miss_rate

    def test_monotone_in_threads(self):
        params = ModelParams()
        rates = [cache_model.miss_rate(params, p) for p in range(1, 9)]
        assert rates == sorted(rates)

    def test_bigger_cache_less_interference(self):
        small = ModelParams(cache_bytes=16 * 1024)
        large = ModelParams(cache_bytes=256 * 1024)
        assert cache_model.miss_rate(small, 4) > cache_model.miss_rate(large, 4)

    def test_sustains_four_threads_at_64kb(self):
        # Section 8: "caches greater than 64 Kbytes comfortably sustain
        # the working sets of four processes."
        params = ModelParams()
        assert cache_model.sustainable_threads(params) >= 4

    def test_small_cache_does_not_sustain_four(self):
        params = ModelParams(cache_bytes=8 * 1024)
        assert cache_model.sustainable_threads(params) < 4

    def test_saturates_at_one(self):
        params = ModelParams(cache_interference_coeff=10.0)
        assert cache_model.miss_rate(params, 100) == 1.0


class TestNetworkModel:
    def test_unloaded_latency_is_base(self):
        params = ModelParams()
        assert network_model.latency(params, 0.0) == params.base_round_trip

    def test_latency_monotone_in_load(self):
        params = ModelParams()
        rates = [0.0, 0.002, 0.005, 0.01]
        latencies = [network_model.latency(params, r) for r in rates]
        assert latencies == sorted(latencies)

    def test_saturation_is_infinite(self):
        params = ModelParams()
        rate = network_model.saturation_request_rate(params)
        assert network_model.latency(params, rate * 1.01) == float("inf")

    def test_higher_dimension_more_bandwidth(self):
        lo = ModelParams(network_dim=2, network_radix=90)   # ~8100 nodes
        hi = ModelParams(network_dim=3, network_radix=20)
        assert (network_model.saturation_request_rate(hi)
                > network_model.saturation_request_rate(lo) * 0.5)


class TestEquation1:
    def test_single_thread_formula(self):
        # U(1) = 1 / (1 + m(1) T(1)): the paper's explicit special case.
        u = equation1(1, 0.02, 55, 10)
        assert u == pytest.approx(1 / (1 + 0.02 * 55))

    def test_saturated_region_formula(self):
        u = equation1(100, 0.02, 55, 10)
        assert u == pytest.approx(1 / (1 + 10 * 0.02))

    def test_linear_region_scales_with_p(self):
        u1 = equation1(1, 0.02, 200, 10)
        u2 = equation1(2, 0.02, 200, 10)
        assert u2 == pytest.approx(2 * u1)

    @given(st.integers(min_value=1, max_value=64),
           st.floats(min_value=0.001, max_value=0.2),
           st.floats(min_value=10, max_value=500),
           st.floats(min_value=0, max_value=64))
    def test_bounded_by_both_regimes(self, p, m, t, c):
        u = equation1(p, m, t, c)
        assert 0 < u <= 1
        assert u <= 1 / (1 + c * m) + 1e-9


class TestSection8Claims:
    """The headline numbers of the paper's scalability analysis."""

    def test_single_thread_utilization_near_half(self):
        u, _, _ = solve(ModelParams(), 1)
        assert 0.40 <= u <= 0.50     # 1/(1+0.02*55) = 0.476 less contention

    def test_three_threads_near_80_percent(self):
        # "as few as three processes yield close to 80% utilization
        # for a ten-cycle context-switch overhead"
        u, _, _ = solve(ModelParams(), 3)
        assert 0.75 <= u <= 0.85

    def test_plateau_then_gentle_decline(self):
        # "The marginal benefits of additional processes is seen to
        # decrease due to network and cache interference."
        curve = utilization_curve(ModelParams(), max_threads=8)
        peak = max(curve)
        assert curve.index(peak) <= 3          # peak by p=3..4
        assert curve[-1] < peak                # declines after
        assert curve[-1] > 0.65                # but only gently

    def test_utilization_capped_near_080(self):
        # "Why is utilization limited to a maximum of about 0.80?"
        curve = utilization_curve(ModelParams(), max_threads=16)
        assert max(curve) < 0.85

    def test_cs_overhead_cap(self):
        assert saturation_utilization(ModelParams()) == pytest.approx(
            1 / (1 + 10 * 0.02))

    def test_ten_cycle_switch_not_harmful(self):
        # "The relatively large ten-cycle context switch overhead does
        # not significantly impact performance."
        u10, _, _ = solve(ModelParams(), 3)
        u4, _, _ = solve(ModelParams(), 3, context_switch=4)
        assert u4 - u10 < 0.05

    def test_huge_switch_cost_does_hurt(self):
        u10, _, _ = solve(ModelParams(), 4)
        u100, _, _ = solve(ModelParams(), 4, context_switch=100)
        assert u10 - u100 > 0.2


class TestFigure5:
    def test_bands_stack_to_ideal(self):
        for pt in figure5.compute(ModelParams()):
            total = (pt.useful + pt.band_cs + pt.band_cache
                     + pt.band_network)
            assert total == pytest.approx(pt.ideal, abs=1e-6)

    def test_curves_are_ordered(self):
        for pt in figure5.compute(ModelParams()):
            assert pt.useful <= pt.cache_network + 1e-9
            assert pt.cache_network <= pt.network + 1e-9
            assert pt.network <= pt.ideal + 1e-9

    def test_ideal_reaches_one(self):
        points = figure5.compute(ModelParams())
        assert points[-1].ideal == pytest.approx(1.0, abs=1e-6)

    def test_ideal_single_thread_matches_formula(self):
        pt = figure5.compute(ModelParams())[0]
        assert pt.ideal == pytest.approx(1 / (1 + 0.02 * 55), abs=1e-3)

    def test_render_and_plot(self):
        points = figure5.compute(ModelParams(), max_threads=4)
        assert "p" in figure5.render(points)
        assert "U=" in figure5.ascii_plot(points)

    def test_custom_context_switch(self):
        points = figure5.compute(ModelParams(), context_switch=16)
        assert points[3].band_cs > 0
