"""MachineConfig validation and MachineStats aggregation."""

import pytest

from repro.errors import ConfigError
from repro.lang.run import run_mult
from repro.machine.config import MachineConfig


class TestConfig:
    def test_defaults_match_paper(self):
        config = MachineConfig()
        assert config.num_task_frames == 4
        assert config.trap_squash_cycles == 5
        assert config.switch_handler_cycles == 6       # 11-cycle switch
        assert config.future_touch_resolved_cycles == 23
        assert config.cache_bytes == 64 * 1024         # Table 4
        assert config.cache_block_bytes == 16

    def test_custom_april_switch(self):
        config = MachineConfig(custom_april_switch=True)
        assert config.trap_squash_cycles + config.switch_handler_cycles == 4

    def test_replace_preserves_and_overrides(self):
        base = MachineConfig(num_processors=4)
        derived = base.replace(lazy_futures=True)
        assert derived.num_processors == 4
        assert derived.lazy_futures
        assert not base.lazy_futures

    def test_replace_keeps_custom_switch(self):
        config = MachineConfig(custom_april_switch=True).replace(
            num_processors=2)
        assert config.trap_squash_cycles + config.switch_handler_cycles == 4

    def test_validation_errors(self):
        with pytest.raises(ConfigError):
            MachineConfig(num_processors=0)
        with pytest.raises(ConfigError):
            MachineConfig(placement="random")
        with pytest.raises(ConfigError):
            MachineConfig(memory_mode="magic")
        with pytest.raises(ConfigError):
            MachineConfig(num_processors=64, memory_words=1 << 16)
        with pytest.raises(ConfigError):
            MachineConfig(stack_words=1 << 20)


class TestMachineStats:
    FIB = """
    (define (fib n)
      (if (< n 2) n (+ (future (fib (- n 1))) (future (fib (- n 2))))))
    (define (main) (fib 8))
    """

    def test_counters_consistent(self):
        result = run_mult(self.FIB, mode="eager", processors=2)
        stats = result.stats
        assert stats.futures_created == stats.futures_resolved
        assert stats.thread_loads >= stats.threads_created - 1
        assert stats.instructions > 0
        assert stats.run_cycles > 0

    def test_utilization_in_range(self):
        result = run_mult(self.FIB, mode="eager", processors=2)
        assert 0 < result.stats.utilization <= 1
        assert result.stats.system_power == pytest.approx(
            2 * result.stats.utilization)

    def test_render_mentions_fields(self):
        result = run_mult(self.FIB, mode="lazy", processors=2)
        text = result.stats.render()
        for fragment in ("processors", "utilization", "futures",
                         "lazy", "context switches"):
            assert fragment in text

    def test_cycle_conservation_per_cpu(self):
        """Every cycle a processor spends is attributed to a category."""
        from repro.lang.compiler import compile_source
        from repro.machine.alewife import AlewifeMachine
        compiled = compile_source(self.FIB, mode="eager")
        machine = AlewifeMachine(compiled.program,
                                 MachineConfig(num_processors=2))
        machine.run(entry=compiled.entry_label())
        for cpu in machine.cpus:
            assert cpu.stats.total_cycles == cpu.cycles

    def test_output_collected(self):
        result = run_mult("""
        (define (main) (begin (print 1) (print 2) 3))
        """, mode="sequential")
        assert result.output == [1, 2]
        assert result.value == 3
