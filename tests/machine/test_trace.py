"""Tracer tests: capture, filters, and source mapping."""

from repro.lang.compiler import compile_source
from repro.machine.alewife import AlewifeMachine
from repro.machine.config import MachineConfig
from repro.machine.trace import Tracer


FIB = """
(define (fib n)
  (if (< n 2) n (+ (future (fib (- n 1))) (future (fib (- n 2))))))
(define (main n) (fib n))
"""


def run_traced(processors=2, **tracer_kwargs):
    compiled = compile_source(FIB, mode="eager")
    machine = AlewifeMachine(compiled.program,
                             MachineConfig(num_processors=processors))
    tracer = Tracer(machine, **tracer_kwargs)
    result = machine.run(entry=compiled.entry_label(), args=(7,))
    return machine, tracer, result


class TestTracer:
    def test_captures_instructions(self):
        _machine, tracer, result = run_traced()
        assert result.value == 13
        # The hook fires at fetch, including instructions that then
        # trap (which don't retire), so seen >= retired.
        assert tracer.instructions_seen >= result.stats.instructions
        assert len(tracer) > 0

    def test_ring_bounded(self):
        _machine, tracer, _ = run_traced(capacity=50)
        assert len(tracer) == 50

    def test_node_filter(self):
        _machine, tracer, _ = run_traced(processors=2, nodes=[1])
        assert set(tracer.per_node_counts()) <= {1}

    def test_pc_range_filter(self):
        machine, tracer, _ = run_traced(pc_range=(0, 0x40))
        assert all(r.pc < 0x40 for r in tracer.records)

    def test_records_render(self):
        _machine, tracer, _ = run_traced(capacity=100)
        text = tracer.render(5)
        assert "0x" in text

    def test_at_label(self):
        compiled = compile_source(FIB, mode="sequential")
        machine = AlewifeMachine(compiled.program, MachineConfig())
        tracer = Tracer(machine)
        machine.run(entry=compiled.entry_label(), args=(5,))
        hits = tracer.at_label(compiled.entry_label())
        assert len(hits) == 1   # main called once

    def test_detach_stops(self):
        compiled = compile_source(FIB, mode="sequential")
        machine = AlewifeMachine(compiled.program, MachineConfig())
        tracer = Tracer(machine)
        tracer.detach()
        machine.run(entry=compiled.entry_label(), args=(5,))
        assert len(tracer) == 0

    def test_disabled_by_default(self):
        compiled = compile_source(FIB, mode="sequential")
        machine = AlewifeMachine(compiled.program, MachineConfig())
        for cpu in machine.cpus:
            assert cpu.trace_hook is None
            assert cpu.trap_hook is None


class TestTrapCapture:
    def test_captures_trap_entries_with_kind(self):
        _machine, tracer, result = run_traced()
        assert result.value == 13
        assert tracer.traps_seen > 0
        records = tracer.trap_records()
        assert records
        # Every trap record names its kind; fib's futures guarantee
        # future-touch traps among them.
        assert all(isinstance(r.trap, str) for r in records)
        kinds = {r.trap for r in records}
        assert "FUTURE_COMPUTE" in kinds    # strict ops touching futures
        assert tracer.trap_records("FUTURE_COMPUTE") == [
            r for r in records if r.trap == "FUTURE_COMPUTE"]

    def test_trap_records_render_inline(self):
        _machine, tracer, _ = run_traced()
        text = "\n".join(repr(r) for r in tracer.trap_records()[:3])
        assert "*** trap" in text

    def test_traps_false_disables(self):
        _machine, tracer, _ = run_traced(traps=False)
        assert tracer.traps_seen == 0
        assert tracer.trap_records() == []

    def test_instruction_records_have_no_trap(self):
        _machine, tracer, _ = run_traced()
        plain = [r for r in tracer.records if r.trap is None]
        assert plain
        assert all(not r.text.startswith("*** trap") for r in plain)
