"""Compiled Mul-T programs: sequential-language correctness."""

import pytest

from repro.errors import CompilerError
from repro.lang.compiler import compile_source
from repro.lang.run import run_mult


def run_seq(source, args=(), **kwargs):
    return run_mult(source, mode="sequential", args=args, **kwargs)


class TestArithmetic:
    def test_constant(self):
        assert run_seq("(define (main) 42)").value == 42

    def test_add(self):
        assert run_seq("(define (main) (+ 1 2))").value == 3

    def test_nested_arith(self):
        assert run_seq("(define (main) (* (+ 2 3) (- 10 4)))").value == 30

    def test_nary_add(self):
        assert run_seq("(define (main) (+ 1 2 3 4 5))").value == 15

    def test_negative_results(self):
        assert run_seq("(define (main) (- 3 10))").value == -7

    def test_unary_minus(self):
        assert run_seq("(define (main) (- 5))").value == -5

    def test_quotient_remainder(self):
        assert run_seq("(define (main) (quotient 17 5))").value == 3
        assert run_seq("(define (main) (remainder 17 5))").value == 2

    def test_args_passed_to_main(self):
        assert run_seq("(define (main a b) (+ a b))", args=(20, 22)).value == 42


class TestConditionals:
    def test_if_true(self):
        assert run_seq("(define (main) (if (< 1 2) 10 20))").value == 10

    def test_if_false(self):
        assert run_seq("(define (main) (if (> 1 2) 10 20))").value == 20

    def test_comparisons(self):
        source = "(define (main) (if (%s 3 3) 1 0))"
        assert run_seq(source % "<=").value == 1
        assert run_seq(source % ">=").value == 1
        assert run_seq(source % "=").value == 1
        assert run_seq(source % "<").value == 0

    def test_cond(self):
        source = """
        (define (classify n)
          (cond ((< n 0) 0)
                ((= n 0) 1)
                (else 2)))
        (define (main) (+ (classify -5) (+ (classify 0) (classify 9))))
        """
        assert run_seq(source).value == 0 + 1 + 2

    def test_and_or(self):
        assert run_seq("(define (main) (if (and (< 1 2) (< 2 3)) 1 0))").value == 1
        assert run_seq("(define (main) (if (and (< 1 2) (< 3 2)) 1 0))").value == 0
        assert run_seq("(define (main) (if (or (< 2 1) (< 2 3)) 1 0))").value == 1

    def test_not(self):
        assert run_seq("(define (main) (if (not (< 2 1)) 7 8))").value == 7

    def test_booleans_are_values(self):
        assert run_seq("(define (main) #t)").value is True
        assert run_seq("(define (main) #f)").value == []


class TestBindings:
    def test_let(self):
        assert run_seq("(define (main) (let ((x 3) (y 4)) (+ x y)))").value == 7

    def test_let_shadowing(self):
        source = "(define (main) (let ((x 1)) (let ((x 2)) x)))"
        assert run_seq(source).value == 2

    def test_let_star(self):
        source = "(define (main) (let* ((x 2) (y (* x x))) (+ x y)))"
        assert run_seq(source).value == 6

    def test_set_local(self):
        source = """
        (define (main)
          (let ((x 1))
            (set! x (+ x 10))
            x))
        """
        assert run_seq(source).value == 11

    def test_global_constant(self):
        source = """
        (define limit 100)
        (define (main) (+ limit 1))
        """
        assert run_seq(source).value == 101

    def test_set_global(self):
        source = """
        (define counter 0)
        (define (bump) (set! counter (+ counter 1)))
        (define (main) (begin (bump) (bump) counter))
        """
        assert run_seq(source).value == 2


class TestFunctions:
    def test_direct_call(self):
        source = """
        (define (double x) (+ x x))
        (define (main) (double 21))
        """
        assert run_seq(source).value == 42

    def test_recursion(self):
        source = """
        (define (fact n) (if (< n 2) 1 (* n (fact (- n 1)))))
        (define (main) (fact 10))
        """
        assert run_seq(source).value == 3628800

    def test_mutual_recursion(self):
        source = """
        (define (is-even n) (if (= n 0) #t (is-odd (- n 1))))
        (define (is-odd n) (if (= n 0) #f (is-even (- n 1))))
        (define (main) (if (is-even 10) 1 0))
        """
        assert run_seq(source).value == 1

    def test_four_arguments(self):
        source = """
        (define (f a b c d) (+ a (+ b (+ c d))))
        (define (main) (f 1 2 3 4))
        """
        assert run_seq(source).value == 10

    def test_self_tail_call_is_constant_stack(self):
        # A 100000-iteration loop would blow the 1K-word stack without TCO.
        source = """
        (define (count n acc) (if (= n 0) acc (count (- n 1) (+ acc 1))))
        (define (main) (count 100000 0))
        """
        assert run_seq(source).value == 100000

    def test_lambda_closure(self):
        source = """
        (define (make-adder k) (lambda (x) (+ x k)))
        (define (main) ((make-adder 4) 38))
        """
        assert run_seq(source).value == 42

    def test_nested_capture(self):
        source = """
        (define (f a)
          (lambda (b)
            (lambda (c) (+ a (+ b c)))))
        (define (main) (((f 1) 2) 3))
        """
        assert run_seq(source).value == 6

    def test_function_as_value(self):
        source = """
        (define (apply2 f x) (f x))
        (define (inc x) (+ x 1))
        (define (main) (apply2 inc 41))
        """
        assert run_seq(source).value == 42


class TestDataStructures:
    def test_cons_car_cdr(self):
        assert run_seq("(define (main) (car (cons 1 2)))").value == 1
        assert run_seq("(define (main) (cdr (cons 1 2)))").value == 2

    def test_list_building(self):
        source = "(define (main) (cons 1 (cons 2 (cons 3 '()))))"
        assert run_seq(source).value == [1, 2, 3]

    def test_null_and_pair(self):
        assert run_seq("(define (main) (if (null? '()) 1 0))").value == 1
        assert run_seq("(define (main) (if (pair? (cons 1 2)) 1 0))").value == 1
        assert run_seq("(define (main) (if (pair? 5) 1 0))").value == 0

    def test_set_car(self):
        source = """
        (define (main)
          (let ((p (cons 1 2)))
            (set-car! p 9)
            (car p)))
        """
        assert run_seq(source).value == 9

    def test_list_recursion(self):
        source = """
        (define (sum lst) (if (null? lst) 0 (+ (car lst) (sum (cdr lst)))))
        (define (main) (sum (iota 10)))
        """
        assert run_seq(source).value == 45

    def test_vectors(self):
        source = """
        (define (main)
          (let ((v (make-vector 5 0)))
            (vector-set! v 0 10)
            (vector-set! v 4 32)
            (+ (vector-ref v 0) (+ (vector-ref v 4) (vector-length v)))))
        """
        assert run_seq(source).value == 47

    def test_prelude_helpers(self):
        assert run_seq("(define (main) (list-length (iota 7)))").value == 7
        assert run_seq("(define (main) (list-reverse (iota 3)))").value == [2, 1, 0]
        assert run_seq("(define (main) (max2 3 (min2 9 5)))").value == 5
        assert run_seq("(define (main) (abs (- 3 10)))").value == 7

    def test_print_output(self):
        result = run_seq("""
        (define (main) (begin (print 1) (print (cons 2 '())) 0))
        """)
        assert result.output == [1, [2]]


class TestCompilerErrors:
    def test_unbound_variable(self):
        with pytest.raises(CompilerError):
            compile_source("(define (main) nosuch)")

    def test_too_many_args(self):
        with pytest.raises(CompilerError):
            compile_source("(define (f a b c d e) a) (define (main) 0)")

    def test_bad_primitive_arity(self):
        with pytest.raises(CompilerError):
            compile_source("(define (main) (car 1 2))")

    def test_set_captured_rejected(self):
        with pytest.raises(CompilerError):
            compile_source("""
            (define (f x) (lambda () (set! x 1)))
            (define (main) 0)
            """)

    def test_non_define_toplevel(self):
        with pytest.raises(CompilerError):
            compile_source("(+ 1 2)")
