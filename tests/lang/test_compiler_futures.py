"""Compiled futures: eager and lazy, single- and multi-processor."""

import pytest

from repro.lang.run import run_mult

FIB = """
(define (fib n)
  (if (< n 2)
      n
      (+ (future (fib (- n 1))) (future (fib (- n 2))))))
(define (main) (fib 10))
"""

TREE_SUM = """
(define (build depth)
  (if (= depth 0)
      (cons 1 '())
      (cons (build (- depth 1)) (build (- depth 1)))))
(define (tsum t)
  (if (pair? t)
      (if (null? (cdr t))
          (car t)
          (+ (future (tsum (car t))) (tsum (cdr t))))
      0))
(define (main) (tsum (build 5)))
"""


@pytest.mark.parametrize("mode", ["sequential", "eager", "lazy"])
@pytest.mark.parametrize("processors", [1, 2, 4])
class TestFibAllModes:
    def test_fib(self, mode, processors):
        result = run_mult(FIB, mode=mode, processors=processors)
        assert result.value == 55


class TestEagerBehavior:
    def test_futures_created(self):
        result = run_mult(FIB, mode="eager", processors=2)
        # fib 10 has fib(n>=2) calls each spawning 2 futures.
        assert result.stats.futures_created > 100
        assert result.stats.futures_created == result.stats.futures_resolved

    def test_sequential_creates_none(self):
        result = run_mult(FIB, mode="sequential", processors=1)
        assert result.stats.futures_created == 0

    def test_future_value_flows_through_list(self):
        # Non-strict operations (cons, car) pass the future along
        # untouched; only the final (strict) touch synchronizes.
        source = """
        (define (slow-id x) (if (= x 0) 0 (+ 1 (slow-id (- x 1)))))
        (define (main)
          (let ((f (future (slow-id 20))))
            (touch (car (cons f '())))))
        """
        result = run_mult(source, mode="eager", processors=2)
        assert result.value == 20

    def test_touch_primitive(self):
        source = """
        (define (main) (touch (future (+ 1 2))))
        """
        assert run_mult(source, mode="eager", processors=1).value == 3

    def test_future_on_placement(self):
        source = """
        (define (work) (+ 20 22))
        (define (main) (touch (future-on 1 (work))))
        """
        result = run_mult(source, mode="eager", processors=2)
        assert result.value == 42


class TestLazyBehavior:
    def test_single_cpu_no_tasks(self):
        result = run_mult(FIB, mode="lazy", processors=1)
        assert result.value == 55
        # Nobody idle to steal: all futures inlined, zero tasks created.
        assert result.stats.lazy_stolen == 0
        assert result.stats.futures_created == 0
        assert result.stats.threads_created == 1

    def test_multi_cpu_steals(self):
        result = run_mult(FIB, mode="lazy", processors=4)
        assert result.value == 55
        assert result.stats.lazy_stolen > 0
        # Far fewer tasks than eager mode would create.
        eager = run_mult(FIB, mode="eager", processors=4)
        assert result.stats.futures_created < eager.stats.futures_created

    def test_lazy_cheaper_than_eager_single_cpu(self):
        lazy = run_mult(FIB, mode="lazy", processors=1)
        eager = run_mult(FIB, mode="eager", processors=1)
        assert lazy.cycles < eager.cycles

    def test_tree_sum(self):
        for processors in (1, 2, 4):
            result = run_mult(TREE_SUM, mode="lazy", processors=processors)
            assert result.value == 32


class TestSpeedup:
    def test_lazy_fib_speeds_up(self):
        one = run_mult(FIB, mode="lazy", processors=1)
        four = run_mult(FIB, mode="lazy", processors=4)
        assert four.cycles < one.cycles

    def test_eager_fib_speeds_up(self):
        one = run_mult(FIB, mode="eager", processors=1)
        four = run_mult(FIB, mode="eager", processors=4)
        assert four.cycles < one.cycles


class TestSoftwareChecks:
    def test_checks_preserve_semantics(self):
        result = run_mult(FIB, mode="eager", processors=2,
                          software_checks=True)
        assert result.value == 55

    def test_checks_cost_cycles_sequentially(self):
        plain = run_mult(FIB, mode="sequential", processors=1)
        checked = run_mult(FIB, mode="sequential", processors=1,
                           software_checks=True)
        # The Encore configuration pays for the software tag tests even
        # though no future is ever created (Table 3, "Mul-T seq").
        assert checked.cycles > plain.cycles * 1.3
