"""Reader and reference-interpreter unit tests."""

import pytest

from repro.errors import CompilerError
from repro.lang import reader
from repro.lang.interp import interpret


class TestTokenizer:
    def test_basic(self):
        assert reader.tokenize("(+ 1 2)") == ["(", "+", "1", "2", ")"]

    def test_comments_stripped(self):
        assert reader.tokenize("(a ; comment\n b)") == ["(", "a", "b", ")"]

    def test_quote_token(self):
        assert reader.tokenize("'x") == ["'", "x"]


class TestReader:
    def test_atoms(self):
        assert reader.read("42") == 42
        assert reader.read("-7") == -7
        assert reader.read("#t") is True
        assert reader.read("#f") is False
        assert reader.read("abc") == "abc"

    def test_nested(self):
        assert reader.read("(a (b 1) 2)") == ["a", ["b", 1], 2]

    def test_quote(self):
        assert reader.read("'()") == ["quote", []]
        assert reader.read("'x") == ["quote", "x"]

    def test_program(self):
        forms = reader.read_program("(a) (b 1)")
        assert forms == [["a"], ["b", 1]]

    def test_unbalanced_raises(self):
        with pytest.raises(CompilerError):
            reader.read("(a (b)")
        with pytest.raises(CompilerError):
            reader.read(")")

    def test_trailing_raises(self):
        with pytest.raises(CompilerError):
            reader.read("(a) extra")

    def test_write_roundtrip(self):
        text = "(define (f x) (if (< x 1) #t #f))"
        assert reader.read(reader.write(reader.read(text))) == \
            reader.read(text)


class TestInterpreter:
    def run(self, source, entry="main", args=()):
        value, _output = interpret(source, entry=entry, args=args)
        return value

    def test_arith(self):
        assert self.run("(define (main) (* (+ 1 2) (- 10 4)))") == 18

    def test_recursion(self):
        assert self.run("""
        (define (f n) (if (= n 0) 1 (* n (f (- n 1)))))
        (define (main) (f 5))
        """) == 120

    def test_closures(self):
        assert self.run("""
        (define (adder k) (lambda (x) (+ x k)))
        (define (main) ((adder 3) 4))
        """) == 7

    def test_futures_are_transparent(self):
        assert self.run("(define (main) (+ (future 1) (touch 2)))") == 3

    def test_lists(self):
        assert self.run("""
        (define (main) (car (cdr (cons 1 (cons 2 '())))))
        """) == 2

    def test_list_result_converted(self):
        assert self.run("(define (main) (cons 1 (cons 2 '())))") == [1, 2]

    def test_vectors(self):
        assert self.run("""
        (define (main)
          (let ((v (make-vector 3 5)))
            (vector-set! v 1 9)
            (+ (vector-ref v 0) (vector-ref v 1))))
        """) == 14

    def test_shadowing_primitives(self):
        assert self.run("""
        (define (main) (let ((car 10)) car))
        """) == 10

    def test_set_bang(self):
        assert self.run("""
        (define (main) (let ((x 1)) (begin (set! x 5) x)))
        """) == 5

    def test_cond_and_or(self):
        assert self.run("""
        (define (main)
          (cond ((and (< 1 2) (> 1 2)) 0)
                ((or #f (= 1 1)) 7)
                (else 9)))
        """) == 7

    def test_output(self):
        _, output = interpret("(define (main) (begin (print 4) 0))")
        assert output == [4]

    def test_unbound_raises(self):
        with pytest.raises(CompilerError):
            self.run("(define (main) nope)")

    def test_arity_mismatch_raises(self):
        with pytest.raises(CompilerError):
            self.run("(define (f a) a) (define (main) (f 1 2))")
