"""Interval sampler: window bucketing, flushing, and rendering."""

import pytest

from repro.core.processor import CATEGORIES
from repro.obs import IntervalSampler

from tests.obs.conftest import observed_run


def sampled_run(window=512, **kwargs):
    kwargs.setdefault("events", False)
    return observed_run(window=window, **kwargs)


class TestIntervalSampler:
    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            IntervalSampler(window=0)

    def test_windows_cover_the_run(self):
        result, obs = sampled_run(window=512, n=8, processors=2)
        sampler = obs.sampler
        assert len(sampler) >= result.cycles // 512
        ends = [end for end, _ in sampler.windows]
        assert ends == sorted(ends)
        # All but the final (flush) window close on a boundary the
        # machine had just crossed.
        for end in ends[:-1]:
            assert end >= 512

    def test_deltas_sum_to_final_counters(self):
        _, obs = sampled_run(window=256, n=8, processors=2)
        sampler = obs.sampler
        for node, cpu in enumerate(obs.machine.cpus):
            for name in CATEGORIES:
                total = sum(deltas[node][name]
                            for _end, deltas in sampler.windows)
                assert total == getattr(cpu.stats, name), (node, name)

    def test_utilization_series_bounded(self):
        _, obs = sampled_run(window=512, n=8, processors=2)
        series = obs.sampler.utilization_series()
        assert len(series) == len(obs.sampler)
        assert all(0.0 <= value <= 1.0 for value in series)
        assert any(value > 0.0 for value in series)
        per_node = obs.sampler.utilization_series(node=0)
        assert len(per_node) == len(series)

    def test_to_dict_shape(self):
        _, obs = sampled_run(window=512, n=7)
        data = obs.sampler.to_dict()
        assert data["window"] == 512
        assert data["categories"] == list(CATEGORIES)
        for window in data["windows"]:
            assert set(window) == {"end_cycle", "nodes"}
            for node in window["nodes"]:
                assert set(node) == set(CATEGORIES)

    def test_render_heat_strip(self):
        _, obs = sampled_run(window=512, n=8, processors=2)
        text = obs.sampler.render(max_windows=16)
        assert "utilization timeline" in text
        assert "node  0" in text
        assert "node  1" in text

    def test_render_empty(self):
        assert IntervalSampler(64).render() == "(no samples)"
