"""CLI observability surface: --json, --profile, --events, report."""

import json

from repro.cli import main


class TestRunJson:
    def test_json_payload(self, fib_program, capsys):
        assert main(["run", fib_program, "-p", "2", "--args", "8",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["result"] == 21
        assert payload["cycles"] > 0
        assert payload["stats"]["num_processors"] == 2
        # No observability flags: no observation sections.
        assert "events" not in payload

    def test_json_with_profile_and_events(self, fib_program, capsys,
                                          tmp_path):
        trace_path = tmp_path / "trace.json"
        assert main(["run", fib_program, "-p", "2", "--args", "8",
                     "--json", "--profile", "--timeline",
                     "--events", str(trace_path)]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["events"]["emitted"] > 0
        assert payload["profile"]["total_cycles"] > 0
        assert payload["timeline"]["windows"]
        trace = json.loads(trace_path.read_text())
        assert trace["otherData"]["nodes"] == 2
        assert "ui.perfetto.dev" in captured.err

    def test_human_output_with_profile(self, fib_program, capsys):
        assert main(["run", fib_program, "--args", "6",
                     "--profile", "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "result: 8" in out
        assert "hot paths" in out
        assert "utilization timeline" in out


class TestReportCommand:
    def test_report_stdout(self, fib_program, capsys):
        assert main(["report", fib_program, "-p", "2", "--args", "7"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["result"]["value"] == 13
        assert set(report) >= {"config", "stats", "components", "events",
                               "timeline", "profile"}

    def test_report_out_file(self, fib_program, capsys, tmp_path):
        out_path = tmp_path / "report.json"
        assert main(["report", fib_program, "--args", "6", "--coherent",
                     "--out", str(out_path)]) == 0
        report = json.loads(out_path.read_text())
        assert "network" in report["components"]
        assert report["result"]["value"] == 8
