"""CLI observability surface: --json, --profile, --events, report."""

import json

from repro.cli import main


class TestRunJson:
    def test_json_payload(self, fib_program, capsys):
        assert main(["run", fib_program, "-p", "2", "--args", "8",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["result"] == 21
        assert payload["cycles"] > 0
        assert payload["stats"]["num_processors"] == 2
        # No observability flags: no observation sections.
        assert "events" not in payload

    def test_json_with_profile_and_events(self, fib_program, capsys,
                                          tmp_path):
        trace_path = tmp_path / "trace.json"
        assert main(["run", fib_program, "-p", "2", "--args", "8",
                     "--json", "--profile", "--timeline",
                     "--events", str(trace_path)]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["events"]["emitted"] > 0
        assert payload["profile"]["total_cycles"] > 0
        assert payload["timeline"]["windows"]
        trace = json.loads(trace_path.read_text())
        assert trace["otherData"]["nodes"] == 2
        assert "ui.perfetto.dev" in captured.err

    def test_human_output_with_profile(self, fib_program, capsys):
        assert main(["run", fib_program, "--args", "6",
                     "--profile", "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "result: 8" in out
        assert "hot paths" in out
        assert "utilization timeline" in out


class TestTxnOption:
    def test_txn_file_written(self, fib_program, capsys, tmp_path):
        txn_path = tmp_path / "txn.json"
        assert main(["run", fib_program, "-p", "4", "--coherent",
                     "--args", "6", "--txn", str(txn_path)]) == 0
        err = capsys.readouterr().err
        assert "coherence transactions" in err
        payload = json.loads(txn_path.read_text())
        remote = [t for t in payload["transactions"] if t["remote"]]
        assert remote, "coherent 4-node run wrote no remote transaction"
        for txn in remote:
            span = sum(p["end"] - p["start"] for p in txn["phases"])
            assert span == txn["latency"]
        assert set(payload) >= {"transactions", "open", "emitted",
                                "dropped", "by_kind", "histograms",
                                "anomalies"}


class TestReportCommand:
    def test_report_stdout(self, fib_program, capsys):
        assert main(["report", fib_program, "-p", "2", "--args", "7"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["result"]["value"] == 13
        assert set(report) >= {"config", "stats", "components", "events",
                               "timeline", "profile"}

    def test_report_out_file(self, fib_program, capsys, tmp_path):
        out_path = tmp_path / "report.json"
        assert main(["report", fib_program, "--args", "6", "--coherent",
                     "--out", str(out_path)]) == 0
        report = json.loads(out_path.read_text())
        assert "network" in report["components"]
        assert report["result"]["value"] == 8

    def test_report_histograms(self, fib_program, capsys):
        assert main(["report", fib_program, "-p", "2", "--coherent",
                     "--args", "6", "--histograms"]) == 0
        report = json.loads(capsys.readouterr().out)
        hist = report["histograms"]
        assert hist["kinds"], "no per-kind latency histograms"
        for summary in hist["kinds"].values():
            assert set(summary) >= {"count", "p50", "p90", "p99",
                                    "buckets"}
        assert report["components"]["sync"]["locks"] == 0


class TestBenchCommand:
    def test_bench_writes_payload(self, capsys, tmp_path):
        out = tmp_path / "BENCH_simulator.json"
        assert main(["bench", "--quick", "--out", str(out)]) == 0
        err = capsys.readouterr().err
        assert "cycles/sec" in err
        payload = json.loads(out.read_text())
        assert payload["schema"] == "april-bench/1"
        assert payload["quick"] is True
        assert payload["cycles_per_sec"] > 0
        assert payload["instr_per_sec"] > 0
        assert set(payload["runs"]) == {"sequential", "eager", "coherent"}
        assert payload["histograms"], "bench recorded no latency histograms"

    def test_bench_check_against_itself_passes(self, capsys, tmp_path):
        out = tmp_path / "bench.json"
        assert main(["bench", "--quick", "--out", str(out)]) == 0
        capsys.readouterr()
        # A payload is always within tolerance of a baseline with the
        # same numbers, modulo run-to-run noise; self-check by reusing
        # the file we just wrote as the baseline.
        again = tmp_path / "bench2.json"
        assert main(["bench", "--quick", "--out", str(again),
                     "--check", str(out)]) == 0
        assert "baseline check" in capsys.readouterr().err

    def test_bench_check_fails_on_regression(self, capsys, tmp_path):
        from repro.harness.bench import check_baseline
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps({"cycles_per_sec": 1e12}))
        problems, _ = check_baseline({"cycles_per_sec": 1000.0,
                                      "traced_ratio": 1.0}, str(baseline))
        assert problems and "regressed" in problems[0]

    def test_bench_check_missing_baseline(self, tmp_path):
        from repro.harness.bench import check_baseline
        problems, _ = check_baseline({"cycles_per_sec": 1.0},
                                     str(tmp_path / "nope.json"))
        assert problems and "cannot read" in problems[0]

    def test_bench_check_skips_incomparable_payloads(self, tmp_path):
        """quick or --no-fastpath payloads measure different workloads:
        the rate gate must note the mismatch, not cry regression."""
        from repro.harness.bench import check_baseline
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(
            {"cycles_per_sec": 1e12, "quick": False, "fastpath": True}))
        for payload in (
            {"cycles_per_sec": 1000.0, "traced_ratio": 1.0, "quick": True,
             "fastpath": True},
            {"cycles_per_sec": 1000.0, "traced_ratio": 1.0, "quick": False,
             "fastpath": False},
        ):
            problems, notes = check_baseline(payload, str(baseline))
            assert not problems
            assert notes and "not comparable" in notes[0]


class TestExplainCommand:
    def test_explain_text_report(self, fib_program, capsys):
        assert main(["explain", fib_program, "-p", "2", "--args", "8"]) == 0
        out = capsys.readouterr().out
        assert "conservation: exact" in out
        assert "why not linear" in out
        assert "critical path:" in out

    def test_explain_json_byte_stable(self, fib_program, capsys):
        argv = ["explain", fib_program, "-p", "2", "--args", "8", "--json"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["result"] == 21
        assert payload["threads"]["conservation"]["exact"]
        path = payload["critical_path"]
        assert 0 < path["length"] <= payload["cycles"]
        assert path["why"]

    def test_explain_writes_perfetto_trace(self, fib_program, capsys,
                                           tmp_path):
        trace_path = tmp_path / "explain.json"
        assert main(["explain", fib_program, "-p", "2", "--args", "8",
                     "--events", str(trace_path)]) == 0
        capsys.readouterr()
        trace = json.loads(trace_path.read_text())
        cats = {e.get("cat") for e in trace["traceEvents"]}
        assert "block-flow" in cats


class TestReportThreadFlags:
    def test_report_threads_section(self, fib_program, capsys):
        assert main(["report", fib_program, "-p", "2", "--args", "8",
                     "--threads"]) == 0
        report = json.loads(capsys.readouterr().out)
        threads = report["threads"]
        assert threads["conservation"]["exact"]
        assert threads["threads"]

    def test_report_critical_path_implies_threads(self, fib_program,
                                                  capsys):
        assert main(["report", fib_program, "-p", "2", "--args", "8",
                     "--critical-path"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert "threads" in report
        path = report["critical_path"]
        assert path["length"] <= report["result"]["cycles"]
        assert not path["truncated"]

    def test_report_without_flags_has_no_thread_section(self, fib_program,
                                                        capsys):
        assert main(["report", fib_program, "-p", "2", "--args", "8"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert "threads" not in report
        assert "critical_path" not in report


class TestWatchdogOption:
    def test_deadlock_exits_3_with_postmortem(self, capsys, tmp_path):
        pm_path = tmp_path / "hang.json"
        code = main(["run", "examples/deadlock.mult", "-p", "2",
                     "--watchdog", "--postmortem", str(pm_path)])
        captured = capsys.readouterr()
        assert code == 3
        assert "== HANG DETECTED: deadlock" in captured.out
        assert "wait-for cycle:" in captured.out
        assert "disassembly:" in captured.out
        assert "wrote post-mortem JSON" in captured.err
        pm = json.loads(pm_path.read_text())
        assert pm["kind"] == "deadlock"
        assert pm["wait_for"]["cycles"]
        assert pm["disassembly"]

    def test_watchdog_quiet_on_healthy_run(self, fib_program, capsys):
        code = main(["run", fib_program, "-p", "2", "--args", "8",
                     "--watchdog", "--watchdog-interval", "512"])
        out = capsys.readouterr().out
        assert code == 0
        assert "result: 21" in out
        assert "HANG" not in out


class TestMonitorCommand:
    def test_scripted_session_transcript(self, fib_program, capsys,
                                         tmp_path):
        script = tmp_path / "session.script"
        script.write_text("where\nstep 3\nthreads\nquit\n")
        code = main(["monitor", fib_program, "--args", "5",
                     "--script", str(script)])
        out = capsys.readouterr().out
        assert code == 0
        assert "april monitor:" in out
        assert "(april) step 3" in out
        assert out.count("(april)") == 4
        assert "  main" in out

    def test_shipped_fixture_is_deterministic(self, capsys):
        """The committed CI fixture: two in-process runs, byte-equal
        transcripts (the same check CI does across processes)."""
        argv = ["monitor", "examples/fib.mult", "--args", "6",
                "--script", "examples/monitor_fib.script"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "program finished: result 8" in first
