"""EventBus unit tests plus the determinism contract of the stream."""

from repro.obs import EventBus, EventKind

from tests.obs.conftest import observed_run


class TestEventBus:
    def test_ring_capacity(self):
        bus = EventBus(capacity=10)
        for cycle in range(25):
            bus.emit(EventKind.NET_SEND, cycle, 0, dst=1)
        assert len(bus) == 10
        assert bus.emitted == 25
        assert bus.dropped == 15
        # Oldest records fell off the front; the counts survive.
        assert [e.cycle for e in bus] == list(range(15, 25))
        assert bus.counts() == {"net_send": 25}

    def test_dropped_exact_after_wraparound(self):
        """`dropped` counts overflow appends explicitly: it stays exact
        even when the ring is consumed out-of-band, and `counts()` still
        reflects every event ever emitted."""
        bus = EventBus(capacity=4)
        for cycle in range(4):
            bus.emit(EventKind.NET_SEND, cycle, 0)
        assert bus.dropped == 0
        for cycle in range(4, 10):
            bus.emit(EventKind.TRAP_ENTER, cycle, 0)
        assert bus.dropped == 6
        # Out-of-band consumption must not inflate the drop count.
        bus.records.popleft()
        bus.records.popleft()
        bus.emit(EventKind.NET_SEND, 10, 0)
        assert bus.dropped == 6          # ring had room again
        bus.emit(EventKind.NET_SEND, 11, 0)
        bus.emit(EventKind.NET_SEND, 12, 0)
        assert bus.dropped == 7          # exactly one more overflow
        assert bus.emitted == 13
        assert bus.counts() == {"net_send": 7, "trap_enter": 6}
        assert sum(bus.counts().values()) == bus.emitted

    def test_unbounded_when_capacity_none(self):
        bus = EventBus(capacity=None)
        for cycle in range(1000):
            bus.emit(EventKind.TRAP_ENTER, cycle, 0)
        assert len(bus) == 1000
        assert bus.dropped == 0

    def test_subscribe_all_and_by_kind(self):
        bus = EventBus()
        seen_all, seen_traps = [], []
        bus.subscribe(seen_all.append)
        bus.subscribe(seen_traps.append, kind=EventKind.TRAP_ENTER)
        bus.emit(EventKind.TRAP_ENTER, 1, 0, trap="FUTURE_TOUCH")
        bus.emit(EventKind.NET_SEND, 2, 0, dst=3)
        assert len(seen_all) == 2
        assert len(seen_traps) == 1
        assert seen_traps[0].data["trap"] == "FUTURE_TOUCH"

    def test_select_filters_by_kind(self):
        bus = EventBus()
        bus.emit(EventKind.THREAD_LOAD, 5, 0, tid=1)
        bus.emit(EventKind.THREAD_UNLOAD, 9, 0, tid=1)
        bus.emit(EventKind.THREAD_LOAD, 12, 1, tid=2)
        loads = bus.select(EventKind.THREAD_LOAD)
        assert [e.cycle for e in loads] == [5, 12]

    def test_to_dicts_round_trip(self):
        bus = EventBus()
        bus.emit(EventKind.REMOTE_MISS, 42, 3, block=7, home=1, write=False)
        (record,) = bus.to_dicts()
        assert record == {"kind": "remote_miss", "cycle": 42, "node": 3,
                          "block": 7, "home": 1, "write": False}


def _normalized(bus):
    """Event dicts with process-global thread ids renamed by first use.

    Thread ids come from a module-global counter, so two runs in one
    process see different raw tids; everything else must match exactly.
    """
    mapping = {}
    out = []
    for record in bus.to_dicts():
        record = dict(record)
        tid = record.get("tid")
        if tid is not None:
            mapping.setdefault(tid, len(mapping))
            record["tid"] = mapping[tid]
            if record.get("thread") == "thread-%d" % tid:
                record["thread"] = "thread-#%d" % mapping[tid]
        # parent/waker are tid-valued too (spawn and wake events).
        for field in ("parent", "waker"):
            raw = record.get(field)
            if raw is not None:
                mapping.setdefault(raw, len(mapping))
                record[field] = mapping[raw]
        out.append(record)
    return out


class TestDeterminism:
    def test_identical_runs_identical_streams(self):
        result_a, obs_a = observed_run(n=8, processors=2)
        result_b, obs_b = observed_run(n=8, processors=2)
        assert result_a.value == result_b.value == 21
        assert result_a.cycles == result_b.cycles
        stream_a, stream_b = _normalized(obs_a.bus), _normalized(obs_b.bus)
        assert len(stream_a) > 100
        assert stream_a == stream_b

    def test_identical_coherent_runs_identical_streams(self):
        _, obs_a = observed_run(n=7, processors=2, coherent=True)
        _, obs_b = observed_run(n=7, processors=2, coherent=True)
        # The coherent fabric adds miss/directory/network events.
        counts = obs_a.bus.counts()
        assert counts.get("remote_miss", 0) > 0
        assert counts.get("net_send", 0) > 0
        assert _normalized(obs_a.bus) == _normalized(obs_b.bus)


class TestSubscription:
    """subscribe() returns a cancellable handle (satellite of the
    flight-recorder PR: attach must be fully reversible)."""

    def test_cancel_stops_delivery(self):
        bus = EventBus()
        seen = []
        sub = bus.subscribe(seen.append, kind=EventKind.TRAP_ENTER)
        bus.emit(EventKind.TRAP_ENTER, 1, 0)
        sub.cancel()
        bus.emit(EventKind.TRAP_ENTER, 2, 0)
        assert [e.cycle for e in seen] == [1]
        assert not sub.active
        sub.cancel()                        # idempotent
        bus.emit(EventKind.TRAP_ENTER, 3, 0)
        assert len(seen) == 1

    def test_cancel_all_kinds_subscription(self):
        bus = EventBus()
        seen = []
        sub = bus.subscribe(seen.append)
        bus.emit(EventKind.NET_SEND, 1, 0)
        sub.cancel()
        bus.emit(EventKind.NET_SEND, 2, 0)
        assert len(seen) == 1

    def test_context_manager_detaches(self):
        bus = EventBus()
        seen = []
        with bus.subscribe(seen.append, kind=EventKind.THREAD_WAKE) as sub:
            bus.emit(EventKind.THREAD_WAKE, 1, 0)
            assert sub.active
        bus.emit(EventKind.THREAD_WAKE, 2, 0)
        assert len(seen) == 1

    def test_cancel_leaves_other_subscribers(self):
        bus = EventBus()
        keep, drop = [], []
        bus.subscribe(keep.append, kind=EventKind.TRAP_ENTER)
        sub = bus.subscribe(drop.append, kind=EventKind.TRAP_ENTER)
        sub.cancel()
        bus.emit(EventKind.TRAP_ENTER, 1, 0)
        assert len(keep) == 1 and not drop
