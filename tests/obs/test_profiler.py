"""Hot-path profiler: cycle attribution and source-line folding."""

from tests.obs.conftest import observed_run


def profiled_run(**kwargs):
    kwargs.setdefault("events", False)
    kwargs.setdefault("window", 0)
    return observed_run(profile=True, **kwargs)


class TestHotPathProfiler:
    def test_accounts_for_most_of_the_run(self):
        result, obs = profiled_run(n=8, processors=2)
        profiler = obs.profiler
        assert result.value == 21
        # Every cycle between first and last fetch on each processor is
        # charged to some PC; only the tail after the final fetch on
        # each CPU escapes, so the profile covers nearly the whole run.
        machine_cycles = sum(cpu.cycles for cpu in obs.machine.cpus)
        assert profiler.total_cycles > 0.9 * machine_cycles
        assert profiler.total_cycles <= machine_cycles

    def test_flat_costs_fold_to_lines_exactly(self):
        _, obs = profiled_run(n=7)
        flat = obs.profiler.flat()
        by_line = obs.profiler.by_line()
        assert sum(e.cycles for e in flat) == obs.profiler.total_cycles
        assert sum(e.cycles for e in by_line) == obs.profiler.total_cycles
        assert sum(e.count for e in by_line) == sum(e.count for e in flat)
        # Folding can only shrink the entry count.
        assert len(by_line) <= len(flat)

    def test_source_line_attribution(self):
        _, obs = profiled_run(n=8, processors=2)
        mapped = [e for e in obs.profiler.by_line() if e.source is not None]
        assert mapped, "compiler source map produced no attributions"
        # Nearly every profiled cycle lands on a mapped line: the Mul-T
        # compiler emits a source map for all the code it generates.
        mapped_cycles = sum(e.cycles for e in mapped)
        assert mapped_cycles > 0.95 * obs.profiler.total_cycles
        # fib is dominated by future machinery: the trap instructions
        # (task create / future touch stubs) must carry most of the
        # cost — the attribution convention charges handler cycles to
        # the provoking instruction.
        trap_cycles = sum(
            e.cycles for e in mapped if e.source[1].startswith("trap"))
        assert trap_cycles > 0.5 * obs.profiler.total_cycles

    def test_report_renders(self):
        _, obs = profiled_run(n=7)
        text = obs.profiler.report(top=5)
        assert "hot paths" in text
        assert "line" in text
        flat_text = obs.profiler.report(top=5, lines=False)
        assert "0x" in flat_text

    def test_to_dict_top_limits_entries(self):
        _, obs = profiled_run(n=7)
        data = obs.profiler.to_dict(top=3)
        assert len(data["flat"]) == 3
        assert len(data["by_line"]) <= 3
        assert data["total_cycles"] == obs.profiler.total_cycles
        for entry in data["flat"]:
            assert set(entry) >= {"count", "cycles", "pc"}

    def test_detach_stops_profiling(self):
        _, obs = profiled_run(n=6)
        total = obs.profiler.total_cycles
        obs.detach()
        for cpu in obs.machine.cpus:
            assert cpu.profile_hook is None
        assert obs.profiler.total_cycles == total
