"""Observation wiring: dormant hooks, attach/detach, report shape."""

import pytest

from repro.lang.compiler import compile_source
from repro.machine.alewife import AlewifeMachine
from repro.machine.config import MachineConfig
from repro.obs import Observation

from tests.obs.conftest import FIB, observed_run


def build_machine(processors=2, coherent=False):
    compiled = compile_source(FIB, mode="eager")
    config = MachineConfig(
        num_processors=processors,
        memory_mode="coherent" if coherent else "ideal")
    return compiled, AlewifeMachine(compiled.program, config)


class TestDormantHooks:
    def test_everything_disabled_by_default(self):
        _, machine = build_machine(coherent=True)
        assert machine.events is None
        assert machine.sampler is None
        assert machine.runtime.events is None
        assert machine.runtime.scheduler.events is None
        assert machine.runtime.futures.events is None
        for cpu in machine.cpus:
            assert cpu.events is None
            assert cpu.profile_hook is None
            assert cpu.trap_hook is None
        fabric = machine.fabric
        assert fabric.network.events is None
        for component in (fabric.caches + fabric.controllers
                          + fabric.directories):
            assert component.events is None
        # The transaction-tracer slots are just as dormant.
        assert fabric.network.txn is None
        for cpu in machine.cpus:
            assert cpu.txn is None
        for component in (fabric.caches + fabric.controllers
                          + fabric.directories):
            assert component.txn is None

    def test_unobserved_run_emits_nothing(self):
        compiled, machine = build_machine()
        result = machine.run(entry=compiled.entry_label(), args=(8,))
        assert result.value == 21
        assert machine.events is None

    def test_observed_and_unobserved_runs_agree(self):
        compiled, machine = build_machine()
        bare = machine.run(entry=compiled.entry_label(), args=(8,))
        result, obs = observed_run(n=8, processors=2, profile=True)
        # Instrumentation must not perturb the simulation itself.
        assert result.value == bare.value
        assert result.cycles == bare.cycles
        assert obs.bus.emitted > 0


class TestAttachDetach:
    def test_attach_wires_all_components(self):
        _, machine = build_machine(coherent=True)
        obs = Observation(profile=True)
        obs.attach(machine)
        bus = obs.bus
        assert machine.events is bus
        assert machine.sampler is obs.sampler
        assert machine.runtime.events is bus
        assert machine.runtime.scheduler.events is bus
        assert machine.runtime.futures.events is bus
        fabric = machine.fabric
        assert fabric.network.events is bus
        for cpu in machine.cpus:
            assert cpu.events is bus
            assert cpu.profile_hook is not None
        for component in (fabric.caches + fabric.controllers
                          + fabric.directories):
            assert component.events is bus

    def test_attach_wires_transaction_tracer(self):
        _, machine = build_machine(coherent=True)
        obs = Observation(txn=True)
        obs.attach(machine)
        tracer = obs.txn
        assert tracer is not None
        assert obs.hist is tracer.histograms
        fabric = machine.fabric
        assert fabric.network.txn is tracer
        for cpu in machine.cpus:
            assert cpu.txn is tracer
        for component in (fabric.caches + fabric.controllers
                          + fabric.directories):
            assert component.txn is tracer

    def test_detach_restores_dormancy(self):
        _, machine = build_machine(coherent=True)
        obs = Observation(profile=True, txn=True)
        obs.attach(machine)
        obs.detach()
        assert machine.events is None
        assert machine.sampler is None
        for cpu in machine.cpus:
            assert cpu.events is None
            assert cpu.profile_hook is None
            assert cpu.txn is None
        assert machine.fabric.network.events is None
        assert machine.fabric.network.txn is None
        for component in (machine.fabric.caches + machine.fabric.controllers
                          + machine.fabric.directories):
            assert component.txn is None

    def test_txn_disabled_by_default(self):
        obs = Observation()
        assert obs.txn is None
        assert obs.hist is None
        with pytest.raises(ValueError):
            obs.write_txn("nowhere.json")

    def test_perfetto_requires_events(self):
        obs = Observation(events=False, window=0, profile=True)
        with pytest.raises(ValueError):
            obs.perfetto()


class TestReport:
    def test_report_sections(self):
        result, obs = observed_run(n=8, processors=2, coherent=True,
                                   profile=True)
        report = obs.report(result=result)
        assert set(report) >= {"config", "stats", "components", "result",
                               "events", "timeline", "profile"}
        assert report["result"]["value"] == 21
        assert report["stats"]["num_processors"] == 2
        components = report["components"]
        assert set(components) >= {"scheduler", "futures", "caches",
                                   "controllers", "directories", "network"}
        assert len(components["caches"]) == 2
        assert report["events"]["emitted"] == obs.bus.emitted

    def test_ideal_memory_report_has_no_fabric(self):
        result, obs = observed_run(n=7, processors=2)
        components = obs.report(result=result)["components"]
        assert "network" not in components
        assert "scheduler" in components

    def test_to_dict_respects_disabled_consumers(self):
        _, obs = observed_run(n=6, events=True, window=0, profile=False)
        data = obs.to_dict()
        assert "events" in data
        assert "timeline" not in data
        assert "profile" not in data
        assert "transactions" not in data
        assert "histograms" not in data

    def test_report_includes_transaction_sections(self):
        result, obs = observed_run(n=7, processors=2, coherent=True,
                                   txn=True)
        report = obs.report(result=result)
        txn = report["transactions"]
        assert txn["emitted"] > 0
        assert txn["emitted"] == sum(txn["by_kind"].values())
        assert set(txn["anomalies"]) >= {"switch_spin_storms",
                                         "invalidation_hot_lines"}
        hist = report["histograms"]
        assert set(hist) == {"kinds", "hops", "nodes"}
        assert sum(h["count"] for h in hist["kinds"].values()) \
            == txn["emitted"]

    def test_report_includes_sync_and_lazy_counters(self):
        result, obs = observed_run(n=7, processors=2)
        components = obs.report(result=result)["components"]
        sync = components["sync"]
        assert set(sync) == {"istructure_arrays", "istructure_slots",
                             "locks", "barriers", "words_allocated"}
        lazy = components["lazy"]
        assert set(lazy) >= {"pushed", "stolen", "discards", "peak_depth",
                             "live", "queues"}
        assert len(lazy["queues"]) == 2
