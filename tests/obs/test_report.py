"""machine_report: drop counts and sampler config are always visible."""

from repro.lang.run import run_mult
from repro.machine.alewife import AlewifeMachine
from repro.machine.config import MachineConfig
from repro.obs import EventBus, IntervalSampler, machine_report
from repro.lang.compiler import compile_source
from tests.obs.conftest import FIB, observed_run


class TestObservationSections:
    def test_event_section_reports_capacity_and_drops(self):
        _, obs = observed_run(capacity=64)
        report = machine_report(obs.machine, observation=obs)
        events = report["events"]
        assert events["capacity"] == 64
        assert events["recorded"] <= 64
        assert events["dropped"] == events["emitted"] - events["recorded"]

    def test_timeline_section_reports_window(self):
        _, obs = observed_run(window=512)
        report = machine_report(obs.machine, observation=obs)
        assert report["timeline"]["window"] == 512


class TestFallbackSections:
    """A bus/sampler wired without an Observation still gets surfaced."""

    def _bare_machine(self):
        compiled = compile_source(FIB)
        machine = AlewifeMachine(compiled.program,
                                 MachineConfig(num_processors=2))
        return compiled, machine

    def test_attached_bus_without_observation(self):
        compiled, machine = self._bare_machine()
        bus = EventBus(capacity=32)
        machine.events = bus
        machine.runtime.events = bus
        machine.runtime.scheduler.events = bus
        machine.run(entry=compiled.entry_label("main"), args=(6,))
        report = machine_report(machine)
        events = report["events"]
        assert events["emitted"] > 0
        assert events["capacity"] == 32
        assert events["dropped"] == events["emitted"] - events["recorded"]
        assert events["counts"]

    def test_attached_sampler_without_observation(self):
        compiled, machine = self._bare_machine()
        sampler = IntervalSampler(256)
        sampler.attach(machine.cpus)
        machine.sampler = sampler
        machine.run(entry=compiled.entry_label("main"), args=(6,))
        report = machine_report(machine)
        assert report["timeline"] == {"window": 256,
                                      "windows": len(sampler.windows)}

    def test_plain_machine_has_no_observability_sections(self):
        compiled, machine = self._bare_machine()
        machine.run(entry=compiled.entry_label("main"), args=(6,))
        report = machine_report(machine)
        assert "events" not in report
        assert "timeline" not in report
