"""Critical-path analyzer: bounds, exact tiling, cause attribution."""

from repro.obs.critpath import WHAT_KEYS, _split_loaded, analyze, summarize
from repro.obs.lifetime import Segment
from tests.obs.test_lifetime import lifetime_run


def analyzed_run(n=8, processors=4, **kwargs):
    result, obs = lifetime_run(n=n, processors=processors, **kwargs)
    path = obs.critical_path()
    return result, obs, path


class TestPathBounds:
    """length <= machine cycles and >= machine cycles / nodes."""

    def test_bounds_small_and_large(self):
        for n in (8, 12):
            result, obs, path = analyzed_run(n=n)
            nodes = len(obs.machine.cpus)
            assert not path.truncated
            assert path.length <= result.cycles
            assert path.length >= result.cycles // nodes
            # The chain anchors at the run-ending exit, so it reaches
            # the root thread's final cycle.
            assert path.anchor_cycle <= result.cycles

    def test_single_node_path_is_whole_run(self):
        result, _, path = analyzed_run(processors=1)
        assert path.length == result.cycles

    def test_steps_tile_the_chain_exactly(self):
        _, _, path = analyzed_run()
        for step in path.steps:
            assert sum(step.what.values()) == step.end - step.start
        assert sum(sum(s.what.values()) for s in path.steps) == path.length

    def test_both_decompositions_sum_to_length(self):
        _, _, path = analyzed_run()
        assert sum(path.what.values()) == path.length
        assert sum(path.why.values()) == path.length
        assert set(path.what) <= set(WHAT_KEYS)


class TestCauseAttribution:
    def test_dominant_cause_named_with_source_line(self):
        # Eager fib blocks on its own adds: at both sizes the report
        # must name blocked-on-future with a source-line attribution.
        for n in (8, 12):
            _, obs, path = analyzed_run(n=n)
            source_map = obs.machine.program.source_map
            ranked = path.ranked_why(source_map=source_map)
            assert ranked, "empty why ranking"
            blocker = path.dominant_blocker(source_map=source_map)
            assert blocker is not None
            assert blocker["cause"] == "blocked-on-future"
            assert "line" in blocker and "text" in blocker
            assert 0 < blocker["share"] <= 1

    def test_shares_ranked_descending(self):
        _, obs, path = analyzed_run()
        ranked = path.ranked_why()
        cycles = [entry["cycles"] for entry in ranked]
        assert cycles == sorted(cycles, reverse=True)

    def test_render_names_the_blocker(self):
        _, obs, path = analyzed_run()
        text = path.render(source_map=obs.machine.program.source_map)
        assert "critical path:" in text
        assert "why not linear" in text
        assert "blocked-on-future at line" in text


class TestSummarize:
    def test_summary_shape_for_sweep_cells(self):
        result, obs, _ = analyzed_run()
        lifetime = obs.lifetime.finalize(obs.machine)
        summary = summarize(lifetime,
                            source_map=obs.machine.program.source_map)
        assert summary["conservation_exact"]
        assert 0 < summary["length"] <= result.cycles
        assert 0 < summary["share_of_run"] <= 1.0
        assert summary["why"]
        assert len(summary["why"]) <= 3

    def test_analyze_is_deterministic(self):
        _, obs, _ = analyzed_run()
        lifetime = obs.lifetime.finalize(obs.machine)
        first = analyze(lifetime)
        second = analyze(lifetime)
        assert first.what == second.what
        assert first.why == second.why
        assert len(first.steps) == len(second.steps)


class TestSplitLoaded:
    """Integer pro-rata split with largest-remainder rounding."""

    def _episode(self, oncpu, length):
        return Segment("loaded", 0, length, oncpu=oncpu)

    def test_full_span_returns_the_mix(self):
        seg = self._episode({"running": 7, "trap": 3}, 10)
        assert _split_loaded(seg, 10) == {"running": 7, "trap": 3}

    def test_partial_span_sums_exactly(self):
        seg = self._episode({"running": 7, "trap": 3}, 10)
        for span in range(1, 10):
            shares = _split_loaded(seg, span)
            assert sum(shares.values()) == span

    def test_uncharged_residency_becomes_loaded_wait(self):
        seg = self._episode({"running": 4}, 10)
        shares = _split_loaded(seg, 10)
        assert shares == {"running": 4, "loaded_wait": 6}
        seg = self._episode({}, 8)
        assert _split_loaded(seg, 5) == {"loaded_wait": 5}
