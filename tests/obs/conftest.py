"""Shared helpers for the observability tests."""

import pytest

from repro.lang.run import run_mult
from repro.machine.config import MachineConfig
from repro.obs import Observation

FIB = """
(define (fib n)
  (if (< n 2) n (+ (future (fib (- n 1))) (future (fib (- n 2))))))
(define (main n) (fib n))
"""


def observed_run(n=8, processors=2, coherent=False, **obs_kwargs):
    """Run fib(n) under an Observation; returns (result, observation)."""
    obs = Observation(**obs_kwargs)
    config = MachineConfig(
        num_processors=processors,
        memory_mode="coherent" if coherent else "ideal")
    result = run_mult(FIB, args=(n,), config=config, observe=obs)
    return result, obs


@pytest.fixture
def fib_program(tmp_path):
    """A fib source file on disk, for CLI tests."""
    path = tmp_path / "fib.mult"
    path.write_text(FIB)
    return str(path)
