"""Flight recorder + hang watchdog: detection, post-mortems, and the
fast-path eligibility contract (coarse subscriptions must not pin the
machine onto the reference loop)."""

import pytest

from repro.errors import HangDetected
from repro.isa.assembler import assemble
from repro.lang.run import build_mult_machine, run_mult
from repro.machine.alewife import AlewifeMachine
from repro.machine.config import MachineConfig
from repro.obs import EventBus, EventKind, FlightRecorder, Watchdog
from repro.runtime import stubs
from repro.runtime.sync import SYNC_ASM

DEADLOCK = """
(define fa 0)
(define fb 0)
(define (worker-a n)
  (if (< n 1) (touch fb) (worker-a (- n 1))))
(define (worker-b n)
  (if (< n 1) (touch fa) (worker-b (- n 1))))
(define (main)
  (begin
    (set! fa (future-on 0 (worker-a 64)))
    (set! fb (future-on 1 (worker-b 64)))
    (+ (touch fa) (touch fb))))
"""

FIB = """
(define (fib n)
  (if (< n 2) n (+ (future (fib (- n 1))) (future (fib (- n 2))))))
(define (main n) (fib n))
"""

# A consumer switch-spinning forever on an I-structure slot nobody will
# ever fill: the spin-storm (livelock) fixture.
STORM = """
main:
    set slot, a0
    st ra, [sp+0]
    addr sp, 4, sp
    call __ifetch
    subr sp, 4, sp
    ld [sp+0], ra
    ret

.align 8
slot:
    .word 0
"""


def _deadlocked_machine(interval=1024):
    machine, compiled = build_mult_machine(DEADLOCK, processors=2)
    watchdog = Watchdog(interval=interval).attach(machine)
    return machine, compiled, watchdog


class TestDeadlockDetection:
    def test_deadlock_raises_hang_detected(self):
        machine, compiled, _ = _deadlocked_machine()
        with pytest.raises(HangDetected) as info:
            machine.run(entry=compiled.entry_label("main"),
                        max_cycles=50_000_000)
        exc = info.value
        assert exc.kind == "deadlock"
        # Detected within a couple of intervals, not at --max-cycles.
        assert exc.cycle < 20_000
        assert machine.time == exc.cycle

    def test_postmortem_names_the_wait_for_cycle(self):
        machine, compiled, _ = _deadlocked_machine()
        with pytest.raises(HangDetected) as info:
            machine.run(entry=compiled.entry_label("main"))
        pm = info.value.postmortem
        assert pm["kind"] == "deadlock"
        # worker-a <-> worker-b is the cycle; main hangs off it.
        assert len(pm["wait_for"]["cycles"]) == 1
        cycle = pm["wait_for"]["cycles"][0]
        assert len(cycle) == 2
        assert len(pm["wait_for"]["edges"]) == 3
        # Every blocked thread gets a disassembly window at its pc.
        assert len(pm["disassembly"]) == 3
        for section in pm["disassembly"]:
            assert "=>" in section["listing"]
        # Flight rings captured the tail of events on both nodes.
        assert len(pm["nodes"]) == 2
        assert all(node["last_events"] for node in pm["nodes"])

    def test_render_is_deterministic_across_runs(self):
        """Raw tids differ between in-process runs (process-global
        counter); the rendered post-mortem densifies them, so two
        identical runs produce byte-identical text."""
        machine_a, compiled, _ = _deadlocked_machine()
        machine_b = AlewifeMachine(compiled.program,
                                   MachineConfig(num_processors=2))
        Watchdog(interval=1024).attach(machine_b)
        texts = []
        for machine in (machine_a, machine_b):
            with pytest.raises(HangDetected) as info:
                machine.run(entry=compiled.entry_label("main"))
            texts.append(info.value.render())
        assert texts[0] == texts[1]
        assert "== HANG DETECTED: deadlock" in texts[0]
        assert "wait-for cycle:" in texts[0]

    def test_run_mult_watchdog_parameter(self):
        with pytest.raises(HangDetected):
            run_mult(DEADLOCK, processors=2, watchdog=Watchdog())


class TestLivelockDetection:
    def test_spin_storm_raises_livelock(self):
        source = stubs.thread_start_stub() + SYNC_ASM + STORM
        config = MachineConfig(num_processors=1)
        machine = AlewifeMachine(assemble(source), config)
        machine.memory.set_full(machine.program.address_of("slot"), False)
        Watchdog(interval=1024).attach(machine)
        with pytest.raises(HangDetected) as info:
            machine.run(max_cycles=50_000_000)
        exc = info.value
        assert exc.kind == "livelock"
        assert exc.cycle < 50_000
        assert "spin" in exc.reason

    def test_legitimate_run_never_trips(self):
        """fib spawns, spins briefly on steals, and resolves futures —
        the storm detector must stay quiet (strikes + useful-cycle
        guard) and the result must be untouched."""
        watchdog = Watchdog(interval=512)
        result = run_mult(FIB, processors=4, args=(12,), watchdog=watchdog)
        assert result.value == 144


class TestFastPathEligibility:
    def test_watchdog_keeps_fast_loop(self):
        """The flight recorder's coarse bus must not force the
        reference loop: that is the whole point of EventBus(coarse=True)."""
        machine, compiled, _ = _deadlocked_machine()
        with pytest.raises(HangDetected):
            machine.run(entry=compiled.entry_label("main"))
        assert machine.loop_used == "fast-sliced"

    def test_detach_restores_dormancy(self):
        machine, compiled = build_mult_machine(FIB, processors=1)
        watchdog = Watchdog().attach(machine)
        assert machine.events is not None
        assert machine.watchdog is watchdog
        watchdog.detach()
        assert machine.events is None
        assert machine.watchdog is None
        result = machine.run(entry=compiled.entry_label("main"), args=(10,))
        assert result.value == 55
        assert machine.loop_used == "fast-sequential"

    def test_existing_observation_bus_is_reused(self):
        """When an Observation already owns the event bus, the recorder
        subscribes to it instead of installing a second bus — and that
        fine bus still pins the reference loop as before."""
        from repro.obs import Observation
        machine, compiled = build_mult_machine(FIB, processors=1)
        obs = Observation(events=True)
        obs.attach(machine)
        flight = FlightRecorder()
        flight.attach(machine)
        assert machine.events is obs.bus
        result = machine.run(entry=compiled.entry_label("main"), args=(8,))
        assert result.value == 21
        assert machine.loop_used == "reference"
        assert any(flight.rings.values())

    def test_flight_events_match_reference_loop(self):
        """Same program, fast loops vs reference loop: the coarse rings
        must hold identical (cycle, kind) tails — the lockstep proof
        that coarse subscription sees the same machine."""
        tails = []
        for fastpath in (True, False):
            machine, compiled = build_mult_machine(
                FIB, processors=2, fastpath=fastpath)
            flight = FlightRecorder(per_node=256)
            flight.attach(machine)
            result = machine.run(entry=compiled.entry_label("main"),
                                 args=(9,))
            assert result.value == 34
            tails.append([
                [(e.cycle, e.kind.value) for e in machine_ring]
                for machine_ring in
                (flight.rings[n] for n in sorted(flight.rings))])
        assert tails[0] == tails[1]


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        machine, compiled = build_mult_machine(FIB, processors=1)
        flight = FlightRecorder(per_node=16)
        flight.attach(machine)
        machine.run(entry=compiled.entry_label("main"), args=(10,))
        assert all(len(ring) <= 16 for ring in flight.rings.values())
        assert flight.rings[0]

    def test_coarse_bus_excludes_cache_noise(self):
        bus = EventBus(coarse=True)
        from repro.obs.flight import COARSE_KINDS
        assert EventKind.CACHE_EVICT not in COARSE_KINDS
        assert EventKind.DIRECTORY_READ not in COARSE_KINDS
        assert EventKind.TRAP_ENTER in COARSE_KINDS
        assert EventKind.CONTEXT_SWITCH in COARSE_KINDS
        assert bus.coarse
