"""Log2 streaming histograms: buckets, percentiles, axis tables."""

from hypothesis import given
from hypothesis import strategies as st

from repro.obs import LatencyHistograms, Log2Histogram
from repro.obs.hist import NUM_BUCKETS


def _fill(values):
    hist = Log2Histogram()
    for value in values:
        hist.record(value)
    return hist


class TestLog2Histogram:
    def test_bucket_bounds(self):
        assert Log2Histogram.bucket_bounds(0) == (0, 0)
        assert Log2Histogram.bucket_bounds(1) == (1, 1)
        assert Log2Histogram.bucket_bounds(2) == (2, 3)
        assert Log2Histogram.bucket_bounds(5) == (16, 31)

    def test_values_land_in_their_bucket(self):
        hist = Log2Histogram()
        for value in (0, 1, 2, 3, 4, 7, 8, 1000):
            hist.record(value)
            index = value.bit_length()
            low, high = Log2Histogram.bucket_bounds(index)
            assert low <= value <= high
            assert hist.counts[index] >= 1
        assert hist.count == 8
        assert hist.total == 1025
        assert hist.min == 0
        assert hist.max == 1000

    def test_huge_values_clamp_to_last_bucket(self):
        hist = Log2Histogram()
        hist.record(1 << 60)
        assert hist.counts[NUM_BUCKETS - 1] == 1

    def test_negative_values_clamp_to_zero(self):
        hist = Log2Histogram()
        hist.record(-5)
        assert hist.counts[0] == 1
        assert hist.min == 0

    def test_percentiles_bucket_resolved(self):
        hist = Log2Histogram()
        for _ in range(90):
            hist.record(10)          # bucket [8, 15]
        for _ in range(10):
            hist.record(100)         # bucket [64, 127]
        assert hist.percentile(50) == 15
        assert hist.percentile(90) == 15
        # p99 lands in the tail bucket, clamped to the observed max.
        assert hist.percentile(99) == 100
        assert hist.percentile(100) == 100

    def test_percentile_of_empty_is_none(self):
        """An empty histogram has no percentiles — None, not a made-up
        zero that could be mistaken for a measured latency."""
        hist = Log2Histogram()
        for p in (1, 50, 99, 100):
            assert hist.percentile(p) is None

    def test_percentile_rejects_out_of_range_p(self):
        import pytest
        hist = Log2Histogram()
        hist.record(10)
        for bad in (0, -1, 101, 100.5):
            with pytest.raises(ValueError):
                hist.percentile(bad)
        # The domain is (0, 100]: both ends behave (bucket upper bound
        # clamps to the observed max).
        assert hist.percentile(0.1) == 10
        assert hist.percentile(100) == 10

    def test_empty_to_dict_has_null_percentiles(self):
        data = Log2Histogram().to_dict()
        assert data["count"] == 0
        assert data["p50"] is None
        assert data["p99"] is None

    def test_to_dict_shape(self):
        hist = Log2Histogram()
        hist.record(3)
        hist.record(5)
        data = hist.to_dict()
        assert data["count"] == 2
        assert data["sum"] == 8
        assert data["mean"] == 4.0
        assert data["min"] == 3
        assert data["max"] == 5
        assert data["buckets"] == {"2-3": 1, "4-7": 1}
        assert set(data) >= {"p50", "p90", "p99"}


class TestMerge:
    def test_merge_adds_buckets_and_stats(self):
        left = _fill([1, 10, 100])
        right = _fill([5, 1000])
        left.merge(right)
        assert left.count == 5
        assert left.total == 1116
        assert left.min == 1
        assert left.max == 1000
        assert left.counts[(10).bit_length()] >= 1

    def test_merge_returns_self(self):
        hist = Log2Histogram()
        assert hist.merge(_fill([3])) is hist

    def test_merge_empty_is_identity(self):
        hist = _fill([7, 9])
        before = hist.to_dict()
        hist.merge(Log2Histogram())
        assert hist.to_dict() == before
        empty = Log2Histogram()
        empty.merge(Log2Histogram())
        assert empty.count == 0
        assert empty.min is None

    def test_iadd_and_add(self):
        left = _fill([4])
        left += _fill([16])
        assert left.count == 2
        total = _fill([1, 2]) + _fill([3, 4])
        assert total.count == 4
        assert total.total == 10
        assert total.min == 1
        assert total.max == 4

    def test_add_does_not_mutate_operands(self):
        left = _fill([8])
        right = _fill([32])
        merged = left + right
        assert merged.count == 2
        assert left.count == 1
        assert right.count == 1

    @given(st.lists(st.integers(min_value=0, max_value=1 << 40)),
           st.lists(st.integers(min_value=0, max_value=1 << 40)))
    def test_merged_percentiles_equal_concatenated_stream(self, a, b):
        """merge() is exact: percentiles of (A merged B) are the
        percentiles of the single stream A+B, for every percentile and
        every shape of input — the no-averaging-of-percentiles law."""
        merged = _fill(a) + _fill(b)
        concat = _fill(a + b)
        assert merged.count == concat.count
        assert merged.total == concat.total
        assert merged.min == concat.min
        assert merged.max == concat.max
        assert merged.counts == concat.counts
        for p in (1, 25, 50, 75, 90, 99, 99.9, 100):
            assert merged.percentile(p) == concat.percentile(p)


class TestLatencyHistograms:
    def test_observe_populates_all_axes(self):
        tables = LatencyHistograms()
        tables.observe("remote_read", 40, hops=2, node=1)
        tables.observe("remote_read", 60, hops=2, node=3)
        tables.observe("upgrade", 12, hops=1, node=1)
        assert tables.by_kind["remote_read"].count == 2
        assert tables.by_kind["upgrade"].count == 1
        assert tables.by_hops[2].count == 2
        assert tables.by_node[1].count == 2

    def test_to_dict_uses_string_keys(self):
        tables = LatencyHistograms()
        tables.observe("remote_write", 33, hops=3, node=0)
        data = tables.to_dict()
        assert set(data) == {"kinds", "hops", "nodes"}
        assert data["hops"]["3"]["count"] == 1
        assert data["nodes"]["0"]["p50"] == 33
