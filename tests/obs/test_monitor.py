"""The interactive monitor: stepper equivalence, breakpoints,
watchpoints, pokes, and byte-stable scripted transcripts."""

import io

from repro.lang.run import build_mult_machine
from repro.machine.alewife import AlewifeMachine
from repro.machine.config import MachineConfig
from repro.obs.monitor import Monitor

FIB = """
(define (fib n)
  (if (< n 2) n (+ (future (fib (- n 1))) (future (fib (- n 2))))))
(define (main n) (fib n))
"""


def make_monitor(source=FIB, processors=1, args=(6,), **kwargs):
    machine, compiled = build_mult_machine(source, processors=processors)
    out = io.StringIO()
    monitor = Monitor(machine, entry=compiled.entry_label("main"),
                      args=args, out=out, **kwargs)
    return monitor, out


class TestStepperEquivalence:
    def test_stepper_matches_batch_run(self):
        """Driving the machine to completion one step at a time must
        give the same result and cycle count as machine.run() — the
        stepper is the same schedule, just resumable."""
        machine, compiled = build_mult_machine(FIB, processors=2)
        batch = machine.run(entry=compiled.entry_label("main"), args=(9,))

        stepped_machine = AlewifeMachine(compiled.program,
                                         MachineConfig(num_processors=2))
        stepper = stepped_machine.stepper(
            entry=compiled.entry_label("main"), args=(9,))
        while stepper.step_machine() is not None:
            pass
        result = stepper.result()
        assert result.value == batch.value == 34
        assert result.cycles == batch.cycles
        assert stepped_machine.loop_used == "stepper"


class TestMonitorCommands:
    def test_breakpoint_stops_at_pc(self):
        monitor, out = make_monitor()
        body = monitor.machine.program.labels
        target = next(k for k in body if k.startswith("fn_fib")
                      and k.endswith("_body"))
        monitor.dispatch("break %s" % target)
        monitor.dispatch("run")
        cpu = monitor.machine.cpus[0]
        assert cpu.frames[cpu.fp].pc == body[target]
        assert "breakpoint 1 at" in out.getvalue()

    def test_run_after_breakpoint_makes_progress(self):
        monitor, out = make_monitor()
        labels = monitor.machine.program.labels
        target = next(k for k in labels if k.startswith("fn_fib")
                      and k.endswith("_body"))
        monitor.dispatch("break %s" % target)
        monitor.dispatch("run")
        first = monitor.machine.time
        monitor.dispatch("run")
        assert monitor.machine.time > first
        # One line when the breakpoint is set, one per stop.
        assert out.getvalue().count("\nbreakpoint 1 at") == 2

    def test_step_counts_executed_instructions(self):
        monitor, out = make_monitor()
        monitor.dispatch("step 4")
        lines = [l for l in out.getvalue().splitlines()
                 if l.startswith("[")]
        assert len(lines) == 4

    def test_watchpoint_reports_value_and_fe_transition(self):
        monitor, out = make_monitor()
        machine = monitor.machine
        # Watch the top of the heap, then poke it from the monitor and
        # flip its full/empty bit: both transitions must be reported
        # when the change comes from the machine, and suppressed when
        # it comes from our own poke (the poke refreshes the baseline).
        address = 0x21000
        monitor.dispatch("watch %#x" % address)
        monitor.dispatch("poke mem %#x 7" % address)
        monitor.dispatch("step 1")
        transcript = out.getvalue()
        assert "watchpoint 1 at" in transcript
        assert transcript.count("->") == 0          # poke: no spurious hit
        machine.memory.write_word(address, 99)
        machine.memory.set_full(address, False)
        monitor.dispatch("step 1")
        assert "0x00000007/full -> 0x00000063/empty" in out.getvalue()

    def test_watchpoint_stops_run_with_attribution(self):
        """A store executed by the program itself trips the watchpoint
        mid-run and names the pc that did it (watch_hook attribution)."""
        monitor, out = make_monitor()
        machine = monitor.machine
        # fib's prologue stores ra at the initial stack top.
        sp_index = 14
        monitor.dispatch("step 1")
        cpu = machine.cpus[0]
        stack_top = cpu.frames[cpu.fp].regs[sp_index]
        monitor.dispatch("watch %#x" % stack_top)
        monitor.dispatch("run")
        transcript = out.getvalue()
        assert "->" in transcript                   # the hit line
        assert "store)" in transcript               # pc attribution

    def test_poke_reg_and_mem(self):
        monitor, out = make_monitor()
        monitor.dispatch("step 1")
        monitor.dispatch("poke reg r5 0x123")
        assert monitor.machine.cpus[0].read_reg(5) == 0x123
        monitor.dispatch("poke mem 0x21004 77")
        assert monitor.machine.memory.read_word(0x21004) == 77
        monitor.dispatch("poke fe 0x21004 empty")
        assert not monitor.machine.memory.is_full(0x21004)

    def test_threads_table_uses_dense_tids(self):
        monitor, out = make_monitor()
        monitor.dispatch("run until 2000")
        out.truncate(0)
        out.seek(0)
        monitor.dispatch("threads")
        table = out.getvalue()
        assert "  main" in table
        # Dense numbering: tid column starts at 1 regardless of how
        # many threads earlier tests burned from the global counter.
        rows = [l for l in table.splitlines() if l.strip()
                and not l.strip().startswith("tid")]
        first_tid = int(rows[0].split()[0])
        assert first_tid == 1

    def test_disas_marks_current_pc(self):
        monitor, out = make_monitor()
        monitor.dispatch("step 1")
        out.truncate(0)
        out.seek(0)
        monitor.dispatch("disas")
        assert "=>" in out.getvalue()

    def test_unknown_command_is_friendly(self):
        monitor, out = make_monitor()
        monitor.dispatch("frobnicate")
        assert "unknown command" in out.getvalue()

    def test_run_to_completion_reports_result(self):
        monitor, out = make_monitor()
        monitor.dispatch("run")
        assert "program finished: result 8" in out.getvalue()
        monitor.dispatch("step 1")
        assert "program already finished" in out.getvalue()


class TestTranscriptDeterminism:
    SCRIPT = [
        "where",
        "step 6",
        "break fn_fib_FIBBODY",
        "run",
        "regs",
        "psr",
        "frames",
        "threads",
        "disas",
        "watch 0x21000",
        "poke mem 0x21000 5",
        "run until 900",
        "bp",
        "delete 1",
        "run",
        "quit",
    ]

    def _transcript(self, compiled, processors=2):
        machine = AlewifeMachine(compiled.program,
                                 MachineConfig(num_processors=processors))
        out = io.StringIO()
        monitor = Monitor(machine, entry=compiled.entry_label("main"),
                          args=(8,), out=out, echo=True)
        body = next(k for k in machine.program.labels
                    if k.startswith("fn_fib") and k.endswith("_body"))
        monitor.repl([line.replace("fn_fib_FIBBODY", body)
                      for line in self.SCRIPT])
        return out.getvalue()

    def test_two_runs_byte_identical(self):
        """The raw tid counter differs between runs; the transcript must
        not (dense tids everywhere)."""
        _, compiled = build_mult_machine(FIB, processors=2)
        first = self._transcript(compiled)
        second = self._transcript(compiled)
        assert first == second
        assert "(april) run" in first
        assert "program finished: result 21" in first
