"""Coherence-transaction tracer: spans, invariants, anomalies, export."""

import json

from repro.obs.txn import TransactionTracer

from tests.obs.conftest import observed_run


def traced_coherent(n=8, processors=4):
    result, obs = observed_run(n=n, processors=processors, coherent=True,
                               events=False, window=0, txn=True)
    return result, obs.txn


class TestTracedRun:
    def test_remote_misses_are_traced(self):
        result, txn = traced_coherent()
        assert result.value == 21
        remote = [r for r in txn.finished if r.remote]
        assert remote, "coherent 4-node run produced no remote transaction"
        assert txn.emitted == len(txn.finished)
        assert txn.dropped == 0
        assert not txn.open_records(), "transactions left open at exit"

    def test_span_sum_equals_completion_latency(self):
        """The acceptance invariant: request/service/coherence/response
        phases tile the transaction exactly, so their durations sum to
        the controller's computed completion latency."""
        _, txn = traced_coherent()
        checked = 0
        for record in txn.finished:
            if not record.phases:
                continue
            span = sum(end - start for _, start, end in record.phases)
            assert span == record.latency, record
            # And the phases are contiguous: each starts where the
            # previous ended, from issue to ready.
            cursor = record.issue
            for _, start, end in record.phases:
                assert start == cursor
                cursor = end
            assert cursor == record.ready
            checked += 1
        assert checked > 0

    def test_transactions_attributed_to_threads(self):
        _, txn = traced_coherent()
        attributed = [r for r in txn.finished if r.thread is not None]
        assert attributed
        assert all(r.pc is not None for r in attributed)

    def test_retries_link_traps_to_transactions(self):
        _, txn = traced_coherent()
        retried = [r for r in txn.finished if r.retries > 0]
        assert retried, "no transaction trapped its processor"
        for record in retried:
            assert len(record.traps) == record.retries
            for trap in record.traps:
                assert trap["cycle"] >= record.issue
        # The processor hook annotated at least some traps with the
        # handler's chosen action (context switch or spin in place).
        actions = [t.get("action") for r in retried for t in r.traps]
        assert any(a is not None for a in actions)

    def test_network_legs_and_hops(self):
        _, txn = traced_coherent()
        remote = [r for r in txn.finished if r.remote]
        for record in remote:
            net = [leg for leg in record.legs if leg["type"] == "net"]
            assert net, "remote transaction with no network leg"
            assert record.hops == net[0]["hops"] > 0

    def test_histograms_follow_transactions(self):
        _, txn = traced_coherent()
        total = sum(h.count for h in txn.histograms.by_kind.values())
        assert total == txn.emitted
        assert sum(txn.by_kind.values()) == txn.emitted


class TestDeterminism:
    def test_two_runs_byte_identical_json(self):
        _, txn_a = traced_coherent(n=7)
        _, txn_b = traced_coherent(n=7)
        text_a, text_b = txn_a.to_json(), txn_b.to_json()
        assert len(text_a) > 1000
        assert text_a == text_b

    def test_write_round_trip(self, tmp_path):
        _, txn = traced_coherent(n=6)
        path = tmp_path / "txn.json"
        assert txn.write(str(path)) == str(path)
        payload = json.loads(path.read_text())
        assert payload["emitted"] == txn.emitted
        assert len(payload["transactions"]) == len(txn.finished)
        tids = {t["thread"] for t in payload["transactions"]
                if t["thread"] is not None}
        # Dense renumbering by first appearance.
        assert tids == set(range(len(tids)))


class TestSyntheticProtocol:
    """Unit-level checks against a hand-driven tracer."""

    def _miss(self, txn, node=0, block=0x100, home=1, retries=0):
        txn.begin(node, block, home, write=False, now=100)
        txn.net_leg(node, home, 2, 3, 100, 105, 0)
        txn.mark_phases(100, 105, 110, 110, 118)
        txn.commit(118, local=False)
        for i in range(retries):
            txn.trap_retry(node, block, 100 + i)
        txn.complete(node, block, 120)

    def test_ring_overflow_counts_drops_exactly(self):
        txn = TransactionTracer(capacity=5)
        for i in range(8):
            self._miss(txn, block=0x100 + 16 * i)
        assert txn.emitted == 8
        assert len(txn.finished) == 5
        assert txn.dropped == 3
        # Kind counts and histograms still saw every transaction.
        assert txn.by_kind == {"remote_read": 8}
        assert txn.histograms.by_kind["remote_read"].count == 8

    def test_spin_storm_flagged(self):
        txn = TransactionTracer()
        self._miss(txn, retries=9)
        self._miss(txn, block=0x200, retries=2)
        report = txn.anomalies(spin_storm=8)
        (storm,) = report["switch_spin_storms"]
        assert storm["block"] == 0x100
        assert storm["retraps"] == 9

    def test_invalidation_hot_line_flagged(self):
        txn = TransactionTracer()
        for i in range(5):
            txn.begin(i % 2, 0x300, 1, write=True, now=10 * i)
            txn.inv_leg(1 - i % 2, 0x300, "S", 10 * i + 3)
            txn.commit(10 * i + 8, local=False)
            txn.complete(i % 2, 0x300, 10 * i + 9)
        report = txn.anomalies(hot_line=4)
        (hot,) = report["invalidation_hot_lines"]
        assert hot["block"] == 0x300
        assert hot["invalidations"] == 5

    def test_full_empty_fault_to_sync(self):
        txn = TransactionTracer()
        txn.fe_fault(0, 0x400, "EMPTY_LOAD", 50)
        txn.fe_fault(0, 0x400, "EMPTY_LOAD", 62)
        txn.fe_sync(0, 0x400, 90)
        (record,) = txn.finished
        assert record.kind == "full_empty"
        assert record.retries == 2
        assert record.latency == 40
        assert not record.write
        assert txn.by_kind == {"full_empty": 1}

    def test_open_records_until_completion(self):
        txn = TransactionTracer()
        txn.begin(0, 0x500, 1, write=False, now=5)
        txn.commit(20, local=False)
        assert [r.block for r in txn.open_records()] == [0x500]
        assert txn.summary()["open"] == 1
        txn.complete(0, 0x500, 25)
        assert not txn.open_records()
        (record,) = txn.finished
        assert record.filled == 25

    def test_writeback_finishes_immediately(self):
        txn = TransactionTracer()
        txn.begin(2, 0x600, 0, write=True, now=30, kind="writeback")
        txn.commit(44, local=False, kind="writeback")
        (record,) = txn.finished
        assert record.kind == "writeback"
        assert record.latency == 14
        assert not txn.open_records()


class _StubThread:
    def __init__(self, tid):
        self.tid = tid


class _StubFrame:
    def __init__(self, tid, pc=0x40, index=0):
        self.thread = _StubThread(tid)
        self.pc = pc
        self.index = index


class _StubCpu:
    def __init__(self, tid, pc=0x40):
        self.frame = _StubFrame(tid, pc=pc)


class TestAnomalyThresholds:
    """Threshold edges and attribution of the anomaly pass."""

    def _storm(self, txn, block, retraps, tid=None, node=0):
        txn.begin(node, block, 1, write=False, now=0)
        txn.commit(10, local=False)
        cpu = _StubCpu(tid) if tid is not None else None
        for i in range(retraps):
            txn.trap_retry(node, block, 20 + i, cpu=cpu)
        txn.complete(node, block, 100)

    def test_storm_threshold_is_inclusive(self):
        txn = TransactionTracer()
        self._storm(txn, 0x100, retraps=8)
        self._storm(txn, 0x200, retraps=7)
        report = txn.anomalies(spin_storm=8)
        (storm,) = report["switch_spin_storms"]
        assert storm["block"] == 0x100
        assert report["spin_storm_threshold"] == 8

    def test_storm_counts_per_thread_not_per_transaction(self):
        # 5 + 4 re-traps from two different threads on one transaction
        # must not read as a 9-trap storm by any single thread.
        txn = TransactionTracer()
        txn.begin(0, 0x300, 1, write=False, now=0)
        txn.commit(10, local=False)
        for i in range(5):
            txn.trap_retry(0, 0x300, 20 + i, cpu=_StubCpu(11))
        for i in range(4):
            txn.trap_retry(0, 0x300, 40 + i, cpu=_StubCpu(12))
        txn.complete(0, 0x300, 100)
        report = txn.anomalies(spin_storm=8)
        assert report["switch_spin_storms"] == []
        (storm,) = txn.anomalies(spin_storm=5)["switch_spin_storms"]
        assert storm["retraps"] == 5

    def test_open_transactions_included_in_anomaly_pass(self):
        txn = TransactionTracer()
        txn.begin(0, 0x400, 1, write=False, now=0)
        txn.commit(10, local=False)
        for i in range(9):
            txn.trap_retry(0, 0x400, 20 + i, cpu=_StubCpu(3))
        # Never completed: the storm is visible while still in flight.
        (storm,) = txn.anomalies(spin_storm=8)["switch_spin_storms"]
        assert storm["block"] == 0x400
        assert storm["retraps"] == 9

    def test_hot_line_threshold_is_inclusive(self):
        txn = TransactionTracer()
        for count, block in ((4, 0x500), (3, 0x600)):
            for i in range(count):
                txn.begin(0, block, 1, write=True, now=10 * i)
                txn.inv_leg(1, block, "S", 10 * i + 3)
                txn.commit(10 * i + 8, local=False)
                txn.complete(0, block, 10 * i + 9)
        report = txn.anomalies(hot_line=4)
        (hot,) = report["invalidation_hot_lines"]
        assert hot == {"block": 0x500, "invalidations": 4}

    def test_summary_and_payload_carry_anomalies(self):
        txn = TransactionTracer()
        self._storm(txn, 0x700, retraps=9, tid=4242)
        summary = txn.summary()
        assert summary["anomalies"]["switch_spin_storms"]
        payload = txn.to_payload()
        (storm,) = payload["anomalies"]["switch_spin_storms"]
        # Export-side dense renumbering reaches the anomaly records too.
        assert storm["thread"] == 0
