"""Per-thread lifetime accountant: exact conservation, byte stability."""

import json

import pytest

from repro.lang.run import run_mult
from repro.machine.config import MachineConfig
from repro.obs import ConservationError, Observation
from tests.obs.conftest import FIB, observed_run


def lifetime_run(n=8, processors=2, coherent=False, mode="eager"):
    """Run fib(n) with the accountant on; returns (result, observation)."""
    obs = Observation(events=False, window=0, threads=True,
                      txn=coherent)
    config = MachineConfig(
        num_processors=processors,
        memory_mode="coherent" if coherent else "ideal")
    result = run_mult(FIB, mode=mode, args=(n,), config=config, observe=obs)
    return result, obs


class TestConservation:
    """sum(attributed) == machine.time x nodes, exactly, everywhere."""

    @pytest.mark.parametrize("processors,coherent,mode", [
        (1, False, "eager"),
        (2, False, "eager"),
        (4, False, "eager"),
        (4, False, "lazy"),
        (2, True, "eager"),
    ])
    def test_exact_on_every_config(self, processors, coherent, mode):
        result, obs = lifetime_run(processors=processors, coherent=coherent,
                                   mode=mode)
        assert result.value == 21
        lifetime = obs.lifetime.finalize(obs.machine)
        cons = lifetime.check()       # raises on any imbalance
        assert cons["exact"]
        assert cons["attributed"] == cons["cycles_x_nodes"]
        assert cons["cycles_x_nodes"] == result.cycles * processors
        # Integer ledgers: no float slop, no "other" bucket anywhere.
        for ledger in lifetime.threads.values():
            for value in list(ledger.oncpu.values()) + list(
                    ledger.waits.values()):
                assert isinstance(value, int)
                assert value >= 0

    def test_per_node_attribution_balances(self):
        result, obs = lifetime_run(processors=4)
        lifetime = obs.lifetime.finalize(obs.machine)
        for node, skew in lifetime.node_skew.items():
            assert lifetime.node_attr[node] + skew == result.cycles

    def test_wall_ledger_tiles_each_life(self):
        _, obs = lifetime_run(processors=2)
        lifetime = obs.lifetime.finalize(obs.machine)
        for ledger in lifetime.threads.values():
            assert ledger.wall_total() == ledger.end_cycle - ledger.spawn_cycle
            # Segments are contiguous: each starts where the last ended.
            for prev, seg in zip(ledger.segments, ledger.segments[1:]):
                assert seg.start == prev.end

    def test_all_threads_finish_and_root_exit_anchors(self):
        result, obs = lifetime_run(processors=2)
        lifetime = obs.lifetime.finalize(obs.machine)
        assert all(l.done for l in lifetime.threads.values())
        assert lifetime.last_exit is not None
        cycle, _ = lifetime.last_exit
        assert cycle <= result.cycles

    def test_conservation_requires_finalize(self):
        _, obs = lifetime_run()
        with pytest.raises(ConservationError):
            obs.lifetime.conservation()

    def test_check_raises_on_tampered_ledger(self):
        _, obs = lifetime_run()
        lifetime = obs.lifetime.finalize(obs.machine)
        lifetime.check()
        tid = lifetime.order[0]
        lifetime.threads[tid].oncpu["running"] = (
            lifetime.threads[tid].oncpu.get("running", 0) + 1)
        with pytest.raises(ConservationError):
            lifetime.check()


class TestOwnerAttribution:
    """Charges with an empty frame land on the pushed owner, not limbo."""

    def test_scheduler_work_attributed_to_threads(self):
        _, obs = lifetime_run(processors=2)
        lifetime = obs.lifetime.finalize(obs.machine)
        # Every loaded thread pays its own load/unload switch cycles, so
        # the switch bucket is populated per thread while per-node
        # overhead holds only thread-free categories (idle polling).
        switched = [l for l in lifetime.threads.values()
                    if l.oncpu.get("switch_spin")]
        assert switched, "no thread carries its context-switch cycles"
        for bucket in lifetime.node_overhead.values():
            assert "useful" not in bucket

    def test_blocked_waits_carry_touch_sites(self):
        _, obs = lifetime_run(processors=2)
        lifetime = obs.lifetime.finalize(obs.machine)
        sites = {}
        for ledger in lifetime.threads.values():
            for pc, cycles in ledger.block_sites.items():
                sites[pc] = sites.get(pc, 0) + cycles
        assert sites, "no blocked-on-future wait recorded a touch pc"
        total_blocked = sum(l.waits.get("blocked_future", 0)
                            for l in lifetime.threads.values())
        assert sum(sites.values()) <= total_blocked


class TestByteStability:
    def test_two_runs_identical_json(self):
        _, first = lifetime_run(processors=2)
        _, second = lifetime_run(processors=2)
        one = first.thread_accounting()
        two = second.thread_accounting()
        assert (json.dumps(one, sort_keys=True)
                == json.dumps(two, sort_keys=True))

    def test_dense_ids_and_names_renumbered(self):
        _, obs = lifetime_run(processors=2)
        data = obs.thread_accounting()
        tids = [row["tid"] for row in data["threads"]]
        assert tids == list(range(len(tids)))
        for row in data["threads"]:
            if row["name"].startswith("thread-"):
                assert row["name"] == "thread-%d" % row["tid"]

    def test_top_keeps_heaviest_rows(self):
        _, obs = lifetime_run(processors=2)
        full = obs.thread_accounting()
        cut = obs.thread_accounting(top=3)
        assert len(cut["threads"]) == 3
        assert len(full["threads"]) > 3
        assert cut["conservation"] == full["conservation"]


class TestReportIntegration:
    def test_report_carries_threads_section(self):
        _, obs = observed_run(threads=True, window=0)
        report = obs.report()
        assert "threads" in report
        assert report["threads"]["conservation"]["exact"]

    def test_render_mentions_conservation(self):
        _, obs = lifetime_run(processors=2)
        text = obs.lifetime.finalize(obs.machine).render()
        assert "conservation: exact" in text
        assert "tid" in text
