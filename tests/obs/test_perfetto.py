"""Perfetto/Chrome trace export: JSON schema the viewer accepts."""

import json

from tests.obs.conftest import observed_run

#: Trace Event Format phases the exporter may produce.
_PHASES = {"M", "X", "i", "C"}


def traced_run(**kwargs):
    kwargs.setdefault("n", 8)
    kwargs.setdefault("processors", 2)
    result, obs = observed_run(**kwargs)
    return result, obs, obs.perfetto()


class TestPerfettoTrace:
    def test_top_level_shape(self):
        _, obs, trace = traced_run()
        assert set(trace) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert isinstance(trace["traceEvents"], list)
        other = trace["otherData"]
        assert other["nodes"] == 2
        assert other["end_cycle"] == obs.machine.time
        assert other["events_recorded"] == len(obs.bus)
        assert other["events_dropped"] == obs.bus.dropped

    def test_events_are_schema_valid(self):
        _, _, trace = traced_run()
        for event in trace["traceEvents"]:
            phase = event["ph"]
            assert phase in _PHASES
            assert isinstance(event["pid"], int)
            if phase == "M":
                assert event["name"] in ("process_name", "thread_name")
                assert "name" in event["args"]
            else:
                assert isinstance(event["ts"], int)
                assert event["ts"] >= 0
            if phase == "X":
                assert event["dur"] >= 0
                assert isinstance(event["tid"], int)
            if phase == "i":
                assert event["s"] in ("g", "p", "t")
            if phase == "C":
                assert event["args"], "counter event with no values"

    def test_json_serializable(self):
        _, _, trace = traced_run()
        encoded = json.dumps(trace)
        assert json.loads(encoded) == trace

    def test_thread_slices_present(self):
        _, _, trace = traced_run()
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert slices, "no thread-residency slices exported"
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert any(e["name"].startswith("trap:") for e in instants)

    def test_counter_track_follows_sampler(self):
        _, obs, trace = traced_run()
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert len(counters) == len(obs.sampler) * len(obs.machine.cpus)

    def test_write_perfetto(self, tmp_path):
        _, obs, trace = traced_run()
        path = tmp_path / "trace.json"
        written = obs.write_perfetto(str(path))
        assert written == str(path)
        assert json.loads(path.read_text()) == trace


class TestTransactionEvents:
    """Async/flow events for txn-traced runs (clickable in Perfetto)."""

    def _txn_trace(self):
        result, obs, trace = traced_run(processors=4, coherent=True,
                                        txn=True)
        txn_events = [e for e in trace["traceEvents"]
                      if e.get("cat") in ("txn", "txn-flow")]
        return obs, txn_events

    def test_async_events_balanced_per_id(self):
        obs, events = self._txn_trace()
        assert events, "txn-traced run exported no transaction events"
        balance = {}
        for event in events:
            if event["cat"] != "txn":
                continue
            assert event["ph"] in ("b", "e")
            delta = 1 if event["ph"] == "b" else -1
            balance[event["id"]] = balance.get(event["id"], 0) + delta
        assert balance
        assert all(v == 0 for v in balance.values())
        assert len(balance) == len(obs.txn.finished)

    def test_flow_events_stitch_each_transaction(self):
        obs, events = self._txn_trace()
        flows = [e for e in events if e["cat"] == "txn-flow"]
        starts = [e for e in flows if e["ph"] == "s"]
        finishes = [e for e in flows if e["ph"] == "f"]
        assert len(starts) == len(finishes) == len(obs.txn.finished)
        assert all(e["bp"] == "e" for e in finishes)
        # Flow ids match the async envelopes they decorate.
        async_ids = {e["id"] for e in events if e["cat"] == "txn"}
        assert {e["id"] for e in flows} <= async_ids

    def test_phase_spans_nested_inside_envelope(self):
        obs, events = self._txn_trace()
        for record in obs.txn.finished:
            if not record.phases:
                continue
            ident = "0x%x" % record.txn_id
            mine = [e for e in events
                    if e["cat"] == "txn" and e["id"] == ident]
            names = {e["name"] for e in mine}
            assert record.kind in names
            assert {name for name, _, _ in record.phases} <= names
            assert all(record.issue <= e["ts"] for e in mine)
            break


class TestOpenSliceLeftovers:
    """Threads still resident at run end get dur = end_cycle - start."""

    def test_leftover_slice_spans_to_run_end(self):
        from repro.obs.events import EventBus, EventKind
        from repro.obs.perfetto import perfetto_trace
        bus = EventBus()
        bus.emit(EventKind.THREAD_LOAD, 40, 0, frame=1, tid=7,
                 thread="thread-7")
        trace = perfetto_trace(bus, 1, 100)
        (slice_,) = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert slice_["ts"] == 40
        assert slice_["dur"] == 60
        assert slice_["name"] == "thread-7"

    def test_leftovers_close_in_deterministic_order(self):
        from repro.obs.events import EventBus, EventKind
        from repro.obs.perfetto import perfetto_trace
        bus = EventBus()
        # Emit loads out of (node, frame) order; never unload them.
        for node, frame in ((1, 3), (0, 2), (1, 0), (0, 1)):
            bus.emit(EventKind.THREAD_LOAD, 10, node, frame=frame,
                     thread="t-%d-%d" % (node, frame))
        trace = perfetto_trace(bus, 2, 50)
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        keys = [(e["pid"], e["tid"]) for e in slices]
        assert keys == sorted(keys)
        assert all(e["dur"] == 40 for e in slices)


class TestBlockFlowEvents:
    """Blocked-on-future waits become clickable flow arrows."""

    def _flow_trace(self):
        result, obs, trace = traced_run(processors=2, threads=True)
        flows = [e for e in trace["traceEvents"]
                 if e.get("cat") == "block-flow"]
        return obs, flows

    def test_flows_present_and_balanced(self):
        obs, flows = self._flow_trace()
        assert flows, "threads-observed run exported no block-flow arrows"
        starts = [e for e in flows if e["ph"] == "s"]
        finishes = [e for e in flows if e["ph"] == "f"]
        assert len(starts) == len(finishes)
        assert all(e["bp"] == "e" for e in finishes)
        for event in starts:
            args = event["args"]
            assert {"waiter", "waker", "blocked_cycles"} <= set(args)
            assert args["blocked_cycles"] >= 0

    def test_arrows_point_forward_in_time(self):
        _, flows = self._flow_trace()
        by_id = {}
        for event in flows:
            by_id.setdefault(event["id"], {})[event["ph"]] = event
        for pair in by_id.values():
            assert set(pair) == {"s", "f"}
            assert pair["f"]["ts"] >= pair["s"]["ts"]
