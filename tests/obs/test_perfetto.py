"""Perfetto/Chrome trace export: JSON schema the viewer accepts."""

import json

from tests.obs.conftest import observed_run

#: Trace Event Format phases the exporter may produce.
_PHASES = {"M", "X", "i", "C"}


def traced_run(**kwargs):
    kwargs.setdefault("n", 8)
    kwargs.setdefault("processors", 2)
    result, obs = observed_run(**kwargs)
    return result, obs, obs.perfetto()


class TestPerfettoTrace:
    def test_top_level_shape(self):
        _, obs, trace = traced_run()
        assert set(trace) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert isinstance(trace["traceEvents"], list)
        other = trace["otherData"]
        assert other["nodes"] == 2
        assert other["end_cycle"] == obs.machine.time
        assert other["events_recorded"] == len(obs.bus)
        assert other["events_dropped"] == obs.bus.dropped

    def test_events_are_schema_valid(self):
        _, _, trace = traced_run()
        for event in trace["traceEvents"]:
            phase = event["ph"]
            assert phase in _PHASES
            assert isinstance(event["pid"], int)
            if phase == "M":
                assert event["name"] in ("process_name", "thread_name")
                assert "name" in event["args"]
            else:
                assert isinstance(event["ts"], int)
                assert event["ts"] >= 0
            if phase == "X":
                assert event["dur"] >= 0
                assert isinstance(event["tid"], int)
            if phase == "i":
                assert event["s"] in ("g", "p", "t")
            if phase == "C":
                assert event["args"], "counter event with no values"

    def test_json_serializable(self):
        _, _, trace = traced_run()
        encoded = json.dumps(trace)
        assert json.loads(encoded) == trace

    def test_thread_slices_present(self):
        _, _, trace = traced_run()
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert slices, "no thread-residency slices exported"
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert any(e["name"].startswith("trap:") for e in instants)

    def test_counter_track_follows_sampler(self):
        _, obs, trace = traced_run()
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert len(counters) == len(obs.sampler) * len(obs.machine.cpus)

    def test_write_perfetto(self, tmp_path):
        _, obs, trace = traced_run()
        path = tmp_path / "trace.json"
        written = obs.write_perfetto(str(path))
        assert written == str(path)
        assert json.loads(path.read_text()) == trace
