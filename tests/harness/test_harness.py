"""Harness tests: Table 3 rows on tiny instances, Figure 5 report,
reporting helpers, and the CLI."""

import os

import pytest

from repro.harness import reporting
from repro.harness.figure5 import headline_numbers, render_report
from repro.harness.table3 import (
    Table3Row, render_table3, run_program_row,
)
from repro import workloads


class TestTable3Harness:
    def test_april_row_tiny_fib(self):
        row = run_program_row(workloads.get("fib"), "APRIL",
                              cpus=(1, 2), args=(7,))
        assert row.t_seq == 1.0
        assert row.mult_seq == pytest.approx(1.0, abs=0.01)
        assert row.parallel[1] > 1.0       # eager overhead
        assert row.parallel[2] < row.parallel[1]

    def test_encore_row_has_check_overhead(self):
        row = run_program_row(workloads.get("fib"), "Encore",
                              cpus=(1,), args=(7,))
        assert row.mult_seq > 1.3          # software future detection

    def test_lazy_row_is_cheap(self):
        row = run_program_row(workloads.get("fib"), "Apr-lazy",
                              cpus=(1,), args=(8,))
        assert row.parallel[1] < 2.0

    def test_result_checked(self):
        # Row computation verifies that every configuration returns the
        # same value; a broken machine raises instead of mis-reporting.
        row = run_program_row(workloads.get("factor"), "APRIL",
                              cpus=(1,), args=(2, 9))
        assert row.program == "factor"

    def test_render(self):
        row = Table3Row("fib", "APRIL", 1.0, 1.0, {1: 13.0, 2: 6.5})
        text = render_table3([row])
        assert "fib" in text and "13.00" in text
        assert "Mul-T seq" in text

    def test_as_dict(self):
        row = Table3Row("fib", "APRIL", 1.0, 1.0, {1: 13.0})
        data = row.as_dict()
        assert data["T seq"] == 1.0 and data["1"] == 13.0


class TestFigure5Harness:
    def test_report_sections(self):
        text = render_report(max_threads=4)
        assert "Table 4" in text
        assert "Figure 5" in text
        assert "U=" in text

    def test_headline_numbers(self):
        numbers = headline_numbers()
        assert numbers["base_round_trip"] == 55
        assert 0.75 < numbers["U(3)"] < 0.85
        assert numbers["plateau_at"] <= 4


class TestReporting:
    def test_save_report(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "out"))
        path = reporting.save_report("thing.txt", "hello")
        assert os.path.exists(path)
        with open(path) as handle:
            assert handle.read() == "hello\n"

    def test_banner(self):
        assert "title" in reporting.banner("title")


class TestCLI:
    def test_run_command(self, tmp_path, capsys):
        from repro.cli import main
        program = tmp_path / "prog.mult"
        program.write_text(
            "(define (main a) (* a a))")
        code = main(["run", str(program), "--mode", "sequential",
                     "--args", "6"])
        out = capsys.readouterr().out
        assert code == 0
        assert "result: 36" in out
        assert "cycles:" in out

    def test_run_lazy_multiprocessor(self, tmp_path, capsys):
        from repro.cli import main
        program = tmp_path / "prog.mult"
        program.write_text("""
        (define (fib n)
          (if (< n 2) n (+ (future (fib (- n 1))) (future (fib (- n 2))))))
        (define (main n) (fib n))
        """)
        code = main(["run", str(program), "-p", "2", "--mode", "lazy",
                     "--args", "8"])
        assert code == 0
        assert "result: 21" in capsys.readouterr().out

    def test_asm_command(self, tmp_path, capsys):
        from repro.cli import main
        source = tmp_path / "prog.s"
        source.write_text("start:\n    add r1, r2, r3\n    halt\n")
        assert main(["asm", str(source)]) == 0
        out = capsys.readouterr().out
        assert "add r1, r2, r3" in out and "start:" in out

    def test_figure5_command(self, capsys):
        from repro.cli import main
        assert main(["figure5"]) == 0
        assert "Table 4" in capsys.readouterr().out
