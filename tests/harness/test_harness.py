"""Harness tests: Table 3 rows on tiny instances, Figure 5 report,
reporting helpers, the sweep-engine wiring, and the CLI."""

import json
import os

import pytest

from repro.errors import WorkloadCheckError
from repro.harness import reporting
from repro.harness.figure5 import headline_numbers, render_report
from repro.harness.table3 import (
    Table3Row, render_table3, row_jobs, rows_from_sweep, run_program_row,
    run_table3,
)
from repro import workloads

TINY = dict(cpus_by_system={"APRIL": (1, 2)}, args_by_program={"fib": (7,)})


class TestTable3Harness:
    def test_april_row_tiny_fib(self):
        row = run_program_row(workloads.get("fib"), "APRIL",
                              cpus=(1, 2), args=(7,))
        assert row.t_seq == 1.0
        assert row.mult_seq == pytest.approx(1.0, abs=0.01)
        assert row.parallel[1] > 1.0       # eager overhead
        assert row.parallel[2] < row.parallel[1]

    def test_encore_row_has_check_overhead(self):
        row = run_program_row(workloads.get("fib"), "Encore",
                              cpus=(1,), args=(7,))
        assert row.mult_seq > 1.3          # software future detection

    def test_lazy_row_is_cheap(self):
        row = run_program_row(workloads.get("fib"), "Apr-lazy",
                              cpus=(1,), args=(8,))
        assert row.parallel[1] < 2.0

    def test_result_checked(self):
        # Row computation verifies that every configuration returns the
        # same value; a broken machine raises instead of mis-reporting.
        row = run_program_row(workloads.get("factor"), "APRIL",
                              cpus=(1,), args=(2, 9))
        assert row.program == "factor"

    def test_render(self):
        row = Table3Row("fib", "APRIL", 1.0, 1.0, {1: 13.0, 2: 6.5})
        text = render_table3([row])
        assert "fib" in text and "13.00" in text
        assert "Mul-T seq" in text

    def test_as_dict(self):
        row = Table3Row("fib", "APRIL", 1.0, 1.0, {1: 13.0})
        data = row.as_dict()
        assert data["T seq"] == 1.0 and data["1"] == 13.0


class _FakeOutcome:
    """Just enough of a JobResult/JobFailed for rows_from_sweep."""

    def __init__(self, key, value=None, cycles=None, ok=True, kind="crash",
                 message="boom"):
        from repro.machine.config import MachineConfig

        class _J:
            config = MachineConfig()
            label = "/".join(str(part) for part in key)
        _J.key = key
        self.key = key
        self.value = value
        self.cycles = cycles
        self.ok = ok
        self.kind = kind
        self.message = message
        self.context = {}
        self.job = _J()
        self.hash = "0" * 64
        self.attempts = 1


class TestTable3Engine:
    def test_run_table3_through_engine(self):
        result = run_table3(program_names=["fib"], systems=("APRIL",),
                            **TINY)
        (row,) = result.rows
        assert row.parallel[2] < row.parallel[1]
        summary = result.summary()
        assert summary["jobs"] == 4 and summary["failed"] == 0
        # seq_plain and mult_seq are the same run on APRIL: deduped.
        assert summary["deduped"] == 1

    def test_pool_matches_serial(self):
        serial = render_table3(run_table3(
            program_names=["fib"], systems=("APRIL",), **TINY))
        pooled = render_table3(run_table3(
            program_names=["fib"], systems=("APRIL",), pool_size=2, **TINY))
        assert serial == pooled

    def test_cache_resume(self, tmp_path):
        from repro.exp.cache import ResultCache
        cache = ResultCache(str(tmp_path))
        first = run_table3(program_names=["fib"], systems=("APRIL",),
                           cache=cache, **TINY)
        second = run_table3(program_names=["fib"], systems=("APRIL",),
                            cache=cache, **TINY)
        assert second.summary()["executed"] == 0
        assert second.summary()["cache_hits"] == second.summary()["jobs"]
        assert render_table3(first) == render_table3(second)

    def test_check_failure_becomes_failed_cell(self):
        outcomes = [
            _FakeOutcome(("table3", "fib", "APRIL", "seq_plain", 1),
                         value=13, cycles=100),
            _FakeOutcome(("table3", "fib", "APRIL", "mult_seq", 1),
                         value=13, cycles=100),
            _FakeOutcome(("table3", "fib", "APRIL", "parallel", 2),
                         value=999, cycles=50),
        ]
        rows, failures = rows_from_sweep(outcomes)
        (row,) = rows
        assert row.parallel == {}            # bad cell left blank
        (failure,) = failures
        assert failure.kind == "WorkloadCheckError"
        assert failure.context["actual"] == "999"
        assert "fib" in failure.message

    def test_crashed_cell_leaves_blank(self):
        outcomes = [
            _FakeOutcome(("table3", "fib", "APRIL", "seq_plain", 1),
                         value=13, cycles=100),
            _FakeOutcome(("table3", "fib", "APRIL", "mult_seq", 1),
                         value=13, cycles=110),
            _FakeOutcome(("table3", "fib", "APRIL", "parallel", 1),
                         value=13, cycles=500),
            _FakeOutcome(("table3", "fib", "APRIL", "parallel", 2),
                         ok=False, kind="timeout", message="too slow"),
        ]
        rows, failures = rows_from_sweep(outcomes)
        (row,) = rows
        assert row.parallel == {1: 5.0}
        assert failures[0].kind == "timeout"
        text = render_table3(rows)
        assert "5.00" in text

    def test_row_jobs_layout(self):
        jobs = row_jobs(workloads.get("fib"), "Encore")
        variants = [job.key[-2] for job in jobs]
        assert variants == ["seq_plain", "mult_seq"] + ["parallel"] * 4
        assert all(job.key[-3] == "Encore" for job in jobs)
        # Encore rows compile software checks into the checked variants.
        assert jobs[0].software_checks is False
        assert jobs[1].software_checks is True

    def test_program_row_raises_typed_check_error(self, monkeypatch):
        # Force a value mismatch by lying about the expected result:
        # patch rows_from_sweep's comparison via a fake outcome set is
        # covered above; here exercise the run_program_row path end to
        # end with a job whose expect is wrong.
        from repro.exp import runner as runner_mod
        real = runner_mod.run_jobs

        def tampered(jobs, **kwargs):
            sweep = real(jobs, **kwargs)
            for outcome in sweep.outcomes:
                if outcome.ok and outcome.key[-2] == "parallel":
                    outcome.payload = dict(outcome.payload, value=999)
            return sweep
        monkeypatch.setattr("repro.harness.table3.run_jobs", tampered)
        with pytest.raises(WorkloadCheckError) as excinfo:
            run_program_row(workloads.get("fib"), "APRIL", cpus=(1,),
                            args=(7,))
        assert excinfo.value.program == "fib"
        assert excinfo.value.system == "APRIL"
        assert "999" in str(excinfo.value)


class TestFigure5Harness:
    def test_report_sections(self):
        text = render_report(max_threads=4)
        assert "Table 4" in text
        assert "Figure 5" in text
        assert "U=" in text

    def test_headline_numbers(self):
        numbers = headline_numbers()
        assert numbers["base_round_trip"] == 55
        assert 0.75 < numbers["U(3)"] < 0.85
        assert numbers["plateau_at"] <= 4

    def test_headline_numbers_golden(self):
        """Pin the Section 8 claims to exact model output.

        The paper's prose: single-threaded utilization is poor at a
        55-cycle round trip, "close to 80%" utilization with three
        resident threads, and the curve plateaus there (network
        bandwidth caps further gains).  A drift in any model term
        moves these values and must be a deliberate change.
        """
        numbers = headline_numbers()
        assert numbers["base_round_trip"] == 55
        assert numbers["U(1)"] == pytest.approx(0.4296365058727859,
                                                rel=1e-9)
        assert numbers["U(3)"] == pytest.approx(0.8086551370133459,
                                                rel=1e-9)
        assert numbers["U(8)"] == pytest.approx(0.7529134958273591,
                                                rel=1e-9)
        assert numbers["U_max"] == numbers["U(3)"]    # the plateau peak
        assert numbers["plateau_at"] == 3


class TestReporting:
    def test_save_report(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "out"))
        path = reporting.save_report("thing.txt", "hello")
        assert os.path.exists(path)
        with open(path) as handle:
            assert handle.read() == "hello\n"

    def test_banner(self):
        assert "title" in reporting.banner("title")


class TestCLI:
    def test_run_command(self, tmp_path, capsys):
        from repro.cli import main
        program = tmp_path / "prog.mult"
        program.write_text(
            "(define (main a) (* a a))")
        code = main(["run", str(program), "--mode", "sequential",
                     "--args", "6"])
        out = capsys.readouterr().out
        assert code == 0
        assert "result: 36" in out
        assert "cycles:" in out

    def test_run_lazy_multiprocessor(self, tmp_path, capsys):
        from repro.cli import main
        program = tmp_path / "prog.mult"
        program.write_text("""
        (define (fib n)
          (if (< n 2) n (+ (future (fib (- n 1))) (future (fib (- n 2))))))
        (define (main n) (fib n))
        """)
        code = main(["run", str(program), "-p", "2", "--mode", "lazy",
                     "--args", "8"])
        assert code == 0
        assert "result: 21" in capsys.readouterr().out

    def test_asm_command(self, tmp_path, capsys):
        from repro.cli import main
        source = tmp_path / "prog.s"
        source.write_text("start:\n    add r1, r2, r3\n    halt\n")
        assert main(["asm", str(source)]) == 0
        out = capsys.readouterr().out
        assert "add r1, r2, r3" in out and "start:" in out

    def test_figure5_command(self, capsys):
        from repro.cli import main
        assert main(["figure5"]) == 0
        assert "Table 4" in capsys.readouterr().out


class TestSpeedupHarness:
    def test_curve_matches_table3_cells(self):
        from repro.harness.speedup import render_speedup, run_speedup
        curves, sweep = run_speedup(program_names=["fib"],
                                    system="Apr-lazy", cpus=(1, 2),
                                    args_by_program={"fib": (7,)})
        (curve,) = curves
        assert curve.seq_cycles > 0
        assert curve.speedups[2] > curve.speedups[1]
        assert sweep.summary()["failed"] == 0
        text = render_speedup(curves)
        assert "fib" in text and "x" in text
        data = curve.as_dict()
        assert data["speedup"]["2"] == round(curve.speedups[2], 4)

    def test_cells_carry_dominant_blocker(self):
        from repro.harness.speedup import render_speedup, run_speedup
        curves, _ = run_speedup(program_names=["fib"], system="Apr-lazy",
                                cpus=(2,), args_by_program={"fib": (7,)},
                                force=True)
        (curve,) = curves
        summary = curve.critpath[2]
        assert summary["conservation_exact"]
        assert 0 < summary["length"] <= curve.cycles[2]
        assert curve.dominant_blockers()[2] == summary["why"][0]
        assert summary["why"][0]["cause"] in (
            "blocked-on-future", "critical-chain-compute")
        text = render_speedup(curves)
        assert "dominant critical-path blocker" in text
        assert curve.as_dict()["critical_path"]["2"] == summary

    def test_shares_cache_with_table3(self, tmp_path):
        from repro.exp.cache import ResultCache
        from repro.harness.speedup import run_speedup
        cache = ResultCache(str(tmp_path))
        run_table3(program_names=["fib"], systems=("Apr-lazy",),
                   cpus_by_system={"Apr-lazy": (1, 2)},
                   args_by_program={"fib": (7,)}, cache=cache)
        _, sweep = run_speedup(program_names=["fib"], system="Apr-lazy",
                               cpus=(1, 2), args_by_program={"fib": (7,)},
                               cache=cache)
        assert sweep.summary()["executed"] == 0    # all cells shared


class TestSweepCLI:
    def _spec(self, tmp_path, cpus=(1, 2)):
        spec = {
            "name": "clismoke",
            "grid": {"programs": ["fib"], "systems": ["APRIL"],
                     "cpus": list(cpus), "args": {"fib": [7]}},
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        return str(path)

    def test_sweep_command_and_resume(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        spec = self._spec(tmp_path)
        out1 = tmp_path / "r1.json"
        out2 = tmp_path / "r2.json"
        assert main(["sweep", spec, "--jobs", "2",
                     "--out", str(out1)]) == 0
        assert main(["sweep", spec, "--out", str(out2)]) == 0
        first = json.loads(out1.read_text())
        second = json.loads(out2.read_text())
        assert first["cells"] == second["cells"]
        assert second["summary"]["cache_hits"] == 2
        assert second["summary"]["executed"] == 0
        assert "cache_hits=2" in capsys.readouterr().err

    def test_sweep_bad_spec_exits_2(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "bad.json"
        path.write_text("{broken")
        assert main(["sweep", str(path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_table3_filters_single_cell(self, tmp_path, monkeypatch,
                                        capsys):
        from repro.cli import main
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setattr(
            "repro.harness.table3.APRIL_CPUS", (1, 2))
        monkeypatch.setattr(
            "repro.workloads.fib.args", lambda n=7: (7,))
        assert main(["table3", "--programs", "fib",
                     "--systems", "APRIL"]) == 0
        captured = capsys.readouterr()
        assert "fib" in captured.out
        assert "Encore" not in captured.out
        assert "sweep:" in captured.err

    def test_table3_comma_separated_filters(self, capsys):
        from repro.cli import main
        assert main(["table3", "--programs", "fib,nope"]) == 2
        assert "unknown program" in capsys.readouterr().err

    def test_table3_unknown_system(self, capsys):
        from repro.cli import main
        assert main(["table3", "--systems", "VAX"]) == 2
        assert "unknown system" in capsys.readouterr().err
