"""Assembler tests: parsing, layout, label resolution, pseudo-ops."""

import pytest

from repro.errors import AssemblerError
from repro.isa import registers
from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble, disassemble_word
from repro.isa.encoding import decode
from repro.isa.instructions import Opcode
from repro.isa.tags import make_fixnum


def decoded(program):
    return [decode(w) for w in program.words]


class TestBasic:
    def test_single_instruction(self):
        program = assemble("add r1, r2, r3")
        instrs = decoded(program)
        assert len(instrs) == 1
        assert instrs[0].op is Opcode.ADD
        assert (instrs[0].rs1, instrs[0].rs2, instrs[0].rd) == (1, 2, 3)

    def test_immediate_operand(self):
        program = assemble("sub r1, -5, r3")
        instr = decoded(program)[0]
        assert instr.use_imm and instr.imm == -5

    def test_register_aliases(self):
        program = assemble("add a0, a1, t0")
        instr = decoded(program)[0]
        assert instr.rs1 == registers.ARG_REGS[0]
        assert instr.rs2 == registers.ARG_REGS[1]
        assert instr.rd == registers.TEMP_REGS[0]

    def test_global_registers(self):
        program = assemble("or g0, g1, g7")
        instr = decoded(program)[0]
        assert instr.rs1 == registers.GLOBAL_BASE
        assert instr.rd == registers.GLOBAL_BASE + 7

    def test_comments_and_blanks(self):
        program = assemble("""
        ; a comment-only line
        nop   ; trailing comment
        """)
        assert len(program.words) == 1

    def test_cmp_two_operands(self):
        instr = decoded(assemble("cmp r1, 7"))[0]
        assert instr.op is Opcode.CMP and instr.imm == 7


class TestMemoryOperands:
    def test_load_with_offset(self):
        instr = decoded(assemble("ld [r2+8], r3"))[0]
        assert instr.op is Opcode.LDNT
        assert (instr.rs1, instr.imm, instr.rd) == (2, 8, 3)

    def test_load_negative_offset(self):
        instr = decoded(assemble("ldnw [sp-4], t0"))[0]
        assert instr.imm == -4

    def test_load_no_offset(self):
        instr = decoded(assemble("ldett [r9], r1"))[0]
        assert instr.op is Opcode.LDETT and instr.imm == 0

    def test_store(self):
        instr = decoded(assemble("st r3, [r2+4]"))[0]
        assert instr.op is Opcode.STNT
        assert (instr.rd, instr.rs1, instr.imm) == (3, 2, 4)

    def test_all_load_flavors_assemble(self):
        for name in ("ldtt", "ldett", "ldnt", "ldent",
                     "ldnw", "ldenw", "ldtw", "ldetw", "ldr"):
            instr = decoded(assemble("%s [r1+0], r2" % name))[0]
            assert instr.op.name.lower() == name

    def test_all_store_flavors_assemble(self):
        for name in ("sttt", "stftt", "stnt", "stfnt",
                     "stnw", "stfnw", "sttw", "stftw", "str"):
            instr = decoded(assemble("%s r2, [r1+0]" % name))[0]
            assert instr.op.name.lower() == name


class TestLabelsAndBranches:
    def test_backward_branch(self):
        program = assemble("""
        loop:
            add r1, 1, r1
            ba loop
        """)
        instrs = decoded(program)
        # ba is at byte 4, loop at byte 0 -> offset -1 word
        assert instrs[1].op is Opcode.BA
        assert instrs[1].imm == -1
        # delay-slot nop inserted after the branch
        assert instrs[2].op is Opcode.NOP

    def test_forward_branch(self):
        program = assemble("""
            be done
            nop
        done:
            halt
        """)
        instrs = decoded(program)
        assert instrs[0].imm == 3  # done is 3 words ahead (be, slot, nop)

    def test_call_links_and_gets_slot(self):
        program = assemble("""
            call fn
            halt
        fn:
            ret
        """)
        instrs = decoded(program)
        assert instrs[0].op is Opcode.CALL and instrs[0].imm == 3
        assert instrs[1].op is Opcode.NOP
        assert instrs[2].op is Opcode.HALT

    def test_explicit_delay_slot_fill(self):
        program = assemble("""
            ba target
            @add r1, 1, r1
        target:
            halt
        """)
        instrs = decoded(program)
        assert instrs[0].op is Opcode.BA
        assert instrs[1].op is Opcode.ADD  # filled the slot, no nop
        assert instrs[2].op is Opcode.HALT
        assert program.address_of("target") == 8

    def test_label_addresses_are_bytes(self):
        program = assemble("""
        a:  nop
        b:  nop
        c:  nop
        """)
        assert program.address_of("a") == 0
        assert program.address_of("b") == 4
        assert program.address_of("c") == 8

    def test_duplicate_label_raises(self):
        with pytest.raises(AssemblerError):
            assemble("x: nop\nx: nop")

    def test_unknown_label_raises(self):
        with pytest.raises(AssemblerError):
            assemble("ba nowhere")


class TestPseudoOps:
    def test_nop(self):
        assert decoded(assemble("nop"))[0].op is Opcode.NOP

    def test_mov(self):
        instr = decoded(assemble("mov r4, r9"))[0]
        assert instr.op is Opcode.OR
        assert (instr.rs1, instr.rs2, instr.rd) == (4, 0, 9)

    def test_set_small_is_one_instruction(self):
        program = assemble("set 100, r5")
        assert len(program.words) == 1
        instr = decoded(program)[0]
        assert instr.op is Opcode.ADDR and instr.imm == 100

    def test_set_large_is_lui_oril(self):
        program = assemble("set 0x12345678, r5")
        instrs = decoded(program)
        assert [i.op for i in instrs] == [Opcode.LUI, Opcode.ORIL]
        value = (instrs[0].imm << 14) | instrs[1].imm
        assert value == 0x12345678

    def test_set_label(self):
        program = assemble("""
            set data, r5
            halt
        data:
            .word 7
        """)
        instrs = [decode(w) for w in program.words[:2]]
        value = (instrs[0].imm << 14) | instrs[1].imm
        assert value == program.address_of("data")

    def test_ret_expands_to_jmpl(self):
        instrs = decoded(assemble("ret"))
        assert instrs[0].op is Opcode.JMPL
        assert instrs[0].rs1 == registers.RA
        assert instrs[1].op is Opcode.NOP  # delay slot

    def test_neg_and_not(self):
        instrs = decoded(assemble("neg r1, r2\nnot r1, r3"))
        assert instrs[0].op is Opcode.SUBR and instrs[0].rs1 == 0
        assert instrs[1].op is Opcode.XOR and instrs[1].imm == -1


class TestDirectives:
    def test_word(self):
        program = assemble(".word 42")
        assert program.words == [42]

    def test_word_label(self):
        program = assemble("""
        entry:
            nop
        table:
            .word entry
        """)
        assert program.words[1] == program.address_of("entry")

    def test_fixnum(self):
        program = assemble(".fixnum -3")
        assert program.words == [make_fixnum(-3)]

    def test_space(self):
        program = assemble(".space 3\nnop")
        assert len(program.words) == 4
        assert program.words[:3] == [0, 0, 0]

    def test_equ(self):
        program = assemble("""
        .equ FOUR, 4
            add r1, FOUR, r2
        """)
        assert decoded(program)[0].imm == 4

    def test_org(self):
        program = assemble("""
            nop
            .org 0x20
        late:
            halt
        """)
        assert program.address_of("late") == 0x20
        assert len(program.words) == 9

    def test_org_backwards_raises(self):
        with pytest.raises(AssemblerError):
            assemble("nop\nnop\n.org 0\nnop")


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError):
            assemble("frobnicate r1, r2")

    def test_bad_register(self):
        with pytest.raises(AssemblerError):
            assemble("add r1, r2, r99")

    def test_wrong_arity(self):
        with pytest.raises(AssemblerError):
            assemble("add r1, r2")

    def test_slot_fill_without_branch(self):
        with pytest.raises(AssemblerError):
            assemble("nop\n@add r1, 1, r1")


class TestDisassembler:
    def test_roundtrip_listing(self):
        source = """
        start:
            set 5, a0
            call fn
            halt
        fn:
            add a0, 1, a0
            ret
        """
        program = assemble(source)
        listing = disassemble(program.words, base=program.base,
                              labels=program.labels)
        assert "start:" in listing and "fn:" in listing
        assert "halt" in listing

    def test_data_word_renders_as_directive(self):
        assert disassemble_word(0xDEADBEEF).startswith(".word")

    def test_instruction_renders(self):
        program = assemble("add r1, r2, r3")
        assert disassemble_word(program.words[0]) == "add r1, r2, r3"
