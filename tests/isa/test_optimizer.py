"""Delay-slot filler tests: the pass must preserve semantics and only
ever reduce cycle counts."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.isa.assembler import assemble
from repro.isa.encoding import decode
from repro.isa.instructions import Opcode
from repro.isa.optimizer import OptimizingAssembler, assemble_optimized
from repro.lang.interp import interpret
from repro.lang.run import run_mult

from tests.helpers import run_to_halt
from tests.integration.test_differential import programs


def run_program(program, max_steps=200000):
    """Execute an assembled program on a bare CPU; returns (cpu, r-values)."""
    from repro.core.processor import Processor
    from repro.mem.ideal import IdealMemoryPort
    from repro.mem.memory import Memory
    memory = Memory(1 << 16)
    memory.load_program(program)
    cpu = Processor(port=IdealMemoryPort(memory))
    cpu.frame.pc = program.base
    cpu.frame.npc = program.base + 4
    run_to_halt(cpu, max_steps=max_steps)
    return cpu


class TestFilling:
    def test_fills_unconditional_branch(self):
        source = """
            set 80, r1
            ba target
        target:
            halt
        """
        assembler = OptimizingAssembler()
        program = assembler.assemble(source)
        assert assembler.slots_filled == 1
        ops = [decode(w).op for w in program.words]
        assert ops[0] is Opcode.BA          # branch moved up
        assert ops[1] is Opcode.ADDR        # the set, now in the slot
        cpu = run_program(program)
        assert cpu.read_reg(1) == 80        # slot executed

    def test_respects_condition_codes(self):
        # The candidate before a conditional branch is usually the
        # compare: it must not move.
        source = """
            cmpr r1, r2
            be done
            nop
        done:
            halt
        """
        assembler = OptimizingAssembler()
        program = assembler.assemble(source)
        assert assembler.slots_filled == 0
        ops = [decode(w).op for w in program.words]
        assert ops[0] is Opcode.SUBR        # cmpr stayed put

    def test_cc_safe_candidate_moves_past_conditional(self):
        source = """
            cmpr r1, r2
            ldr [r0+0x40], r3
            be done
            nop
        done:
            halt
        """
        assembler = OptimizingAssembler()
        assembler.assemble(source)
        assert assembler.slots_filled == 1

    def test_labeled_candidate_stays(self):
        source = """
        entry:
            set 4, r1
            ba done
        done:
            halt
        """
        assembler = OptimizingAssembler()
        program = assembler.assemble(source)
        assert assembler.slots_filled == 0
        assert program.address_of("entry") == 0

    def test_labeled_branch_stays(self):
        # Jumping to `loop` must not execute the set again.
        source = """
            set 4, r1
        loop:
            ba out
        out:
            halt
        """
        assembler = OptimizingAssembler()
        assembler.assemble(source)
        assert assembler.slots_filled == 0

    def test_store_of_link_register_not_hoisted_into_call(self):
        source = """
            st ra, [sp+0]
            call fn
            halt
        fn:
            ret
        """
        assembler = OptimizingAssembler()
        assembler.assemble(source)
        # st reads ra, which the call rewrites before the slot runs.
        assert assembler.slots_filled == 0

    def test_candidate_writing_jmpl_base_stays(self):
        source = """
            set 24, r5
            jmpl [r5+0], r0
            halt
        """
        assembler = OptimizingAssembler()
        assembler.assemble(source)
        assert assembler.slots_filled == 0


class TestSemanticPreservation:
    LOOP = """
        set 0, r1
        set 1, r2
    loop:
        cmpr r2, 10
        bg done
        addr r1, r2, r1
        addr r2, 1, r2
        ba loop
    done:
        halt
    """

    def test_loop_same_result_fewer_cycles(self):
        plain = run_program(assemble(self.LOOP))
        optimized = run_program(assemble_optimized(self.LOOP))
        assert plain.read_reg(1) == optimized.read_reg(1) == 55
        assert optimized.cycles < plain.cycles

    def test_call_heavy_code(self):
        source = """
            set 0x8000, sp
            set 12, a0
            call double
            mov a0, r1
            halt
        double:
            addr a0, a0, a0
            ret
        """
        plain = run_program(assemble(source))
        optimized = run_program(assemble_optimized(source))
        assert plain.read_reg(1) == optimized.read_reg(1) == 24
        assert optimized.cycles <= plain.cycles


class TestCompilerIntegration:
    FIB = """
    (define (fib n)
      (if (< n 2) n (+ (future (fib (- n 1))) (future (fib (- n 2))))))
    (define (main n) (fib n))
    """

    def test_optimized_fib_agrees_and_is_faster(self):
        plain = run_mult(self.FIB, mode="sequential", args=(10,))
        optimized = run_mult(self.FIB, mode="sequential", args=(10,),
                             optimize=True)
        assert optimized.value == plain.value == 55
        assert optimized.cycles < plain.cycles

    def test_optimized_parallel_modes(self):
        for mode in ("eager", "lazy"):
            result = run_mult(self.FIB, mode=mode, processors=2, args=(9,),
                              optimize=True)
            assert result.value == 34

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(programs(), st.integers(-15, 15), st.integers(-15, 15))
    def test_random_programs_preserved(self, source, a, b):
        expected, _ = interpret(source, args=(a, b))
        plain = run_mult(source, mode="sequential", args=(a, b))
        optimized = run_mult(source, mode="sequential", args=(a, b),
                             optimize=True)
        assert optimized.value == plain.value == expected
        assert optimized.cycles <= plain.cycles
