"""Assembler/disassembler round-trip: the monitor's ``disas`` and the
watchdog post-mortem are only trustworthy if the listing they print is
the exact program the machine executes.

Two properties:

* every opcode, canonical instruction -> encode -> disassemble ->
  reassemble -> the identical word;
* any 32-bit word disassembles without crashing, and the resulting text
  is a fixpoint (reassembling it and disassembling again reproduces the
  same text — ``.word`` directives included).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble_around, disassemble_word
from repro.isa.encoding import (
    IMM11_MAX, IMM11_MIN, IMM12_MAX, IMM12_MIN, IMM18_MAX, OFF24_MAX,
    OFF24_MIN, _M_OPS_EXTRA, _ONE_REG_D, _ONE_REG_S, _U_OPS, _Z_OPS,
    decode, encode,
)
from repro.isa.instructions import Category, Instruction, Opcode, category_of

# Register fields that have a canonical printable name (r0..r31, g0..g7).
REG = st.integers(0, 39)


def instruction_strategy(op):
    """Canonical (renderable) instructions of one opcode."""
    cat = category_of(op)
    if op in _U_OPS:
        return st.builds(lambda rd, imm: Instruction(
            op, rd=rd, imm=imm, use_imm=True),
            REG, st.integers(0, IMM18_MAX))
    if cat in (Category.COMPUTE, Category.LOGIC):
        # CMP renders without rd (the assembler always emits rd=0).
        rd = st.just(0) if op is Opcode.CMP else REG
        imm_form = st.builds(lambda d, s1, imm: Instruction(
            op, rd=d, rs1=s1, imm=imm, use_imm=True),
            rd, REG, st.integers(IMM11_MIN, IMM11_MAX))
        reg_form = st.builds(lambda d, s1, s2: Instruction(
            op, rd=d, rs1=s1, rs2=s2), rd, REG, REG)
        return st.one_of(imm_form, reg_form)
    if cat in (Category.LOAD, Category.STORE) or op in _M_OPS_EXTRA:
        # FLUSH renders without rd, like CMP.
        rd = st.just(0) if op is Opcode.FLUSH else REG
        return st.builds(lambda d, s1, imm: Instruction(
            op, rd=d, rs1=s1, imm=imm, use_imm=True),
            rd, REG, st.integers(IMM12_MIN, IMM12_MAX))
    if cat is Category.BRANCH or op is Opcode.CALL:
        return st.builds(lambda imm: Instruction(op, imm=imm, use_imm=True),
                         st.integers(OFF24_MIN, OFF24_MAX))
    if op is Opcode.TRAP:
        return st.builds(lambda imm: Instruction(op, imm=imm, use_imm=True),
                         st.integers(0, 255))
    if op in _Z_OPS:
        return st.just(Instruction(op))
    if op in _ONE_REG_D:
        return st.builds(lambda rd: Instruction(op, rd=rd), REG)
    if op in _ONE_REG_S:
        return st.builds(lambda rs1: Instruction(op, rs1=rs1), REG)
    raise AssertionError("no strategy for %r — new opcode?" % op)


def reassemble_line(text):
    """Assemble one instruction (or directive) line; the first word."""
    return assemble("    %s\n" % text).words[0]


class TestEveryOpcode:
    @pytest.mark.parametrize("op", list(Opcode), ids=lambda op: op.name)
    def test_canonical_round_trip(self, op):
        """Fixed representative per opcode: encode -> disassemble ->
        reassemble is the identity on the word."""

        @settings(max_examples=25, deadline=None)
        @given(instruction_strategy(op))
        def check(instr):
            word = encode(instr)
            text = disassemble_word(word)
            assert not text.startswith(".word"), text
            assert reassemble_line(text) == word

        check()


class TestArbitraryWords:
    @settings(max_examples=400, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_never_crashes_and_text_is_fixpoint(self, word):
        text = disassemble_word(word)
        assert isinstance(text, str) and text
        if text.startswith(".word"):
            # Data words list as .word and survive reassembly exactly.
            assert reassemble_line(text) == word
        else:
            # Decodable words may carry junk in ignored bit ranges; the
            # *text* is the canonical form and must be a fixpoint.
            assert disassemble_word(reassemble_line(text)) == text
            canonical = encode(decode(word))
            assert encode(decode(canonical)) == canonical

    def test_unknown_opcode_byte_is_word(self):
        assert disassemble_word(0xFF000000).startswith(".word")

    def test_invalid_register_field_is_word(self):
        # COMPUTE with rd = 45: decodable but unprintable (no such
        # register name), so the listing falls back to .word.
        word = (int(Opcode.ADD) << 24) | (45 << 18)
        assert disassemble_word(word).startswith(".word")


class TestDisassembleAround:
    def test_window_marks_pc_and_skips_unmapped(self):
        program = assemble("""
        main:
            set 3, a0
            addr a0, 1, a0
            ret
        """)
        def read_word(address):
            index = address // 4
            if 0 <= index < len(program.words):
                return program.words[index]
            raise IndexError(address)

        listing = disassemble_around(read_word, 4, before=8, after=8,
                                     labels=program.labels)
        assert "=>" in listing
        assert "main:" in listing
        # The window was clipped at the program edges, not padded.
        assert len(listing.splitlines()) <= len(program.words) + 2
