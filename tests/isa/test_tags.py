"""Tests for the Figure 3 data type encodings."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TagError
from repro.isa import tags


class TestFixnums:
    def test_roundtrip_zero(self):
        assert tags.fixnum_value(tags.make_fixnum(0)) == 0

    def test_roundtrip_positive(self):
        assert tags.fixnum_value(tags.make_fixnum(12345)) == 12345

    def test_roundtrip_negative(self):
        assert tags.fixnum_value(tags.make_fixnum(-7)) == -7

    def test_extremes(self):
        assert tags.fixnum_value(tags.make_fixnum(tags.FIXNUM_MAX)) == tags.FIXNUM_MAX
        assert tags.fixnum_value(tags.make_fixnum(tags.FIXNUM_MIN)) == tags.FIXNUM_MIN

    def test_overflow_raises(self):
        with pytest.raises(TagError):
            tags.make_fixnum(tags.FIXNUM_MAX + 1)
        with pytest.raises(TagError):
            tags.make_fixnum(tags.FIXNUM_MIN - 1)

    def test_low_bits_are_zero(self):
        assert tags.make_fixnum(99) & 0b11 == 0

    def test_fixnum_value_rejects_tagged(self):
        with pytest.raises(TagError):
            tags.fixnum_value(tags.make_cons(8))

    @given(st.integers(min_value=tags.FIXNUM_MIN, max_value=tags.FIXNUM_MAX))
    def test_roundtrip_property(self, n):
        word = tags.make_fixnum(n)
        assert tags.is_fixnum(word)
        assert not tags.has_future_lsb(word)
        assert tags.fixnum_value(word) == n


class TestPointers:
    def test_cons_roundtrip(self):
        word = tags.make_cons(0x100)
        assert tags.is_cons(word)
        assert tags.pointer_address(word) == 0x100

    def test_other_roundtrip(self):
        word = tags.make_other(0x208)
        assert tags.is_other(word)
        assert tags.pointer_address(word) == 0x208

    def test_future_roundtrip(self):
        word = tags.make_future(0x18)
        assert tags.is_future(word)
        assert tags.pointer_address(word) == 0x18

    def test_misaligned_pointer_raises(self):
        with pytest.raises(TagError):
            tags.make_cons(0x104)  # word aligned but not 8-byte aligned

    def test_bad_tag_raises(self):
        with pytest.raises(TagError):
            tags.make_pointer(0b011, 0x100)

    def test_only_future_has_lsb_set(self):
        assert tags.has_future_lsb(tags.make_future(8))
        assert not tags.has_future_lsb(tags.make_cons(8))
        assert not tags.has_future_lsb(tags.make_other(8))
        assert not tags.has_future_lsb(tags.make_fixnum(-1))

    @given(
        st.sampled_from([tags.TAG_OTHER, tags.TAG_CONS, tags.TAG_FUTURE]),
        st.integers(min_value=0, max_value=(1 << 28)).map(lambda n: n * 8),
    )
    def test_roundtrip_property(self, tag, address):
        word = tags.make_pointer(tag, address)
        assert tags.pointer_tag(word) == tag
        assert tags.pointer_address(word) == address
        assert tags.is_pointer(word)
        assert not tags.is_fixnum(word)


class TestDescribe:
    def test_fixnum(self):
        assert tags.describe(tags.make_fixnum(42)) == "fixnum(42)"

    def test_cons(self):
        assert "cons@16" in tags.describe(tags.make_cons(16))

    def test_tag_name(self):
        assert tags.tag_name(tags.make_fixnum(1)) == "fixnum"
        assert tags.tag_name(tags.make_future(8)) == "future"
