"""Encode/decode round-trip tests for every instruction format."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.isa.encoding import (
    IMM11_MAX, IMM11_MIN, IMM12_MAX, IMM12_MIN, IMM18_MAX,
    OFF24_MAX, OFF24_MIN, DecodeCache, decode, encode,
)
from repro.isa.instructions import (
    Category, Instruction, Opcode, category_of,
)


def roundtrip(instr):
    decoded = decode(encode(instr))
    assert decoded == instr, "%r != %r" % (decoded, instr)
    return decoded


class TestFormats:
    def test_r_format(self):
        roundtrip(Instruction(Opcode.ADD, rd=3, rs1=4, rs2=5))

    def test_i_format(self):
        roundtrip(Instruction(Opcode.ADD, rd=3, rs1=4, imm=-7, use_imm=True))

    def test_i_format_extremes(self):
        roundtrip(Instruction(Opcode.SUB, rd=1, rs1=2, imm=IMM11_MAX, use_imm=True))
        roundtrip(Instruction(Opcode.SUB, rd=1, rs1=2, imm=IMM11_MIN, use_imm=True))

    def test_global_registers_encode(self):
        roundtrip(Instruction(Opcode.OR, rd=39, rs1=32, rs2=38))

    def test_load(self):
        roundtrip(Instruction(Opcode.LDETT, rd=7, rs1=14, imm=IMM12_MAX, use_imm=True))
        roundtrip(Instruction(Opcode.LDNW, rd=7, rs1=14, imm=IMM12_MIN, use_imm=True))

    def test_store(self):
        roundtrip(Instruction(Opcode.STFNW, rd=9, rs1=2, imm=-44, use_imm=True))

    def test_branch(self):
        roundtrip(Instruction(Opcode.BNE, imm=-200, use_imm=True))
        roundtrip(Instruction(Opcode.JFULL, imm=OFF24_MAX, use_imm=True))
        roundtrip(Instruction(Opcode.BA, imm=OFF24_MIN, use_imm=True))

    def test_call(self):
        roundtrip(Instruction(Opcode.CALL, imm=1234, use_imm=True))

    def test_jmpl(self):
        roundtrip(Instruction(Opcode.JMPL, rd=15, rs1=15, imm=0, use_imm=True))

    def test_lui_oril(self):
        roundtrip(Instruction(Opcode.LUI, rd=5, imm=IMM18_MAX, use_imm=True))
        roundtrip(Instruction(Opcode.ORIL, rd=5, imm=0x3FFF, use_imm=True))

    def test_trap(self):
        roundtrip(Instruction(Opcode.TRAP, imm=17, use_imm=True))

    def test_no_arg_ops(self):
        for op in (Opcode.INCFP, Opcode.DECFP, Opcode.RETT, Opcode.NOP, Opcode.HALT):
            roundtrip(Instruction(op))

    def test_one_reg_ops(self):
        roundtrip(Instruction(Opcode.RDFP, rd=9))
        roundtrip(Instruction(Opcode.RDPSR, rd=32))
        roundtrip(Instruction(Opcode.STFP, rs1=4))
        roundtrip(Instruction(Opcode.WRPSR, rs1=4))

    def test_oob(self):
        roundtrip(Instruction(Opcode.FLUSH, rs1=3, imm=16, use_imm=True))
        roundtrip(Instruction(Opcode.LDIO, rd=4, rs1=0, imm=8, use_imm=True))
        roundtrip(Instruction(Opcode.STIO, rd=4, rs1=0, imm=8, use_imm=True))


class TestErrors:
    def test_imm11_overflow(self):
        with pytest.raises(EncodingError):
            encode(Instruction(Opcode.ADD, rd=1, rs1=1, imm=IMM11_MAX + 1,
                               use_imm=True))

    def test_imm12_overflow(self):
        with pytest.raises(EncodingError):
            encode(Instruction(Opcode.LDNT, rd=1, rs1=1, imm=IMM12_MIN - 1,
                               use_imm=True))

    def test_branch_overflow(self):
        with pytest.raises(EncodingError):
            encode(Instruction(Opcode.BA, imm=OFF24_MAX + 1, use_imm=True))

    def test_bad_register(self):
        with pytest.raises(EncodingError):
            encode(Instruction(Opcode.ADD, rd=64, rs1=0, rs2=0))

    def test_bad_trap_vector(self):
        with pytest.raises(EncodingError):
            encode(Instruction(Opcode.TRAP, imm=256, use_imm=True))

    def test_unknown_opcode_byte(self):
        with pytest.raises(EncodingError):
            decode(0xFF000000)

    def test_data_word_fails_decode(self):
        with pytest.raises(EncodingError):
            decode(0x00000000)


_REG = st.integers(min_value=0, max_value=39)
_ALU_OPS = [
    op for op in Opcode
    if category_of(op) in (Category.COMPUTE, Category.LOGIC)
    and op not in (Opcode.LUI, Opcode.ORIL)
]
_MEM_OPS = [op for op in Opcode if category_of(op) in (Category.LOAD, Category.STORE)]
_BRANCH_OPS = [op for op in Opcode if category_of(op) is Category.BRANCH]


class TestRoundtripProperties:
    @given(st.sampled_from(_ALU_OPS), _REG, _REG, _REG)
    def test_r_format(self, op, rd, rs1, rs2):
        roundtrip(Instruction(op, rd=rd, rs1=rs1, rs2=rs2))

    @given(st.sampled_from(_ALU_OPS), _REG, _REG,
           st.integers(min_value=IMM11_MIN, max_value=IMM11_MAX))
    def test_i_format(self, op, rd, rs1, imm):
        roundtrip(Instruction(op, rd=rd, rs1=rs1, imm=imm, use_imm=True))

    @given(st.sampled_from(_MEM_OPS), _REG, _REG,
           st.integers(min_value=IMM12_MIN, max_value=IMM12_MAX))
    def test_memory(self, op, rd, rs1, imm):
        roundtrip(Instruction(op, rd=rd, rs1=rs1, imm=imm, use_imm=True))

    @given(st.sampled_from(_BRANCH_OPS),
           st.integers(min_value=OFF24_MIN, max_value=OFF24_MAX))
    def test_branches(self, op, offset):
        roundtrip(Instruction(op, imm=offset, use_imm=True))


class TestDecodeCache:
    def test_same_object_returned(self):
        cache = DecodeCache()
        word = encode(Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3))
        first = cache.decode(word)
        second = cache.decode(word)
        assert first is second

    def test_decodes_correctly(self):
        cache = DecodeCache()
        instr = Instruction(Opcode.BNE, imm=-8, use_imm=True)
        assert cache.decode(encode(instr)) == instr
