"""Shared plumbing for the serve end-to-end tests.

No pytest-asyncio here: every test drives its own event loop through
``run()`` (an ``asyncio.run`` with a global deadline so a hung server
fails the test instead of wedging the suite).  Servers run in thread
mode — the simulator is pure, so thread workers are exact and cost no
fork/spawn — and tests that need deterministic concurrency use
:class:`GatedDispatcher`, which parks every execution on an
:class:`asyncio.Event` until the test has observed the queue shape it
wants.
"""

import asyncio
import json
import socket

from repro.serve.dispatch import Dispatcher

#: Global per-test deadline: generous on CI, instant death on hangs.
DEADLINE_S = 30.0


def run(coroutine):
    """``asyncio.run`` with the suite's hang guard."""
    async def guarded():
        return await asyncio.wait_for(coroutine, DEADLINE_S)
    return asyncio.run(guarded())


class GatedDispatcher(Dispatcher):
    """A thread-mode dispatcher that parks executions on a gate.

    ``calls`` counts executions *started* (leaders that reached the
    pool), which together with the gate lets a test freeze the moment
    one flight is open, assert on queue state, then release.
    """

    def __init__(self, workers=2, timeout_s=None):
        super().__init__(workers=workers, timeout_s=timeout_s,
                         mode="thread")
        self.gate = asyncio.Event()
        self.calls = 0

    async def execute(self, payload, spans=False):
        self.calls += 1
        await self.gate.wait()
        return await super().execute(payload, spans=spans)


async def serving(server, scenario):
    """Start ``server``, run ``scenario()``, always stop cleanly."""
    await server.start()
    try:
        return await scenario()
    finally:
        await server.stop(drain_timeout_s=2.0)


async def connect(socket_path):
    return await asyncio.open_unix_connection(socket_path)


async def request(reader, writer, payload):
    """One request/response round-trip on an open connection."""
    writer.write((json.dumps(payload) + "\n").encode())
    await writer.drain()
    return json.loads(await reader.readline())


async def one_shot(socket_path, payload):
    """Connect, ask once, disconnect."""
    reader, writer = await connect(socket_path)
    try:
        return await request(reader, writer, payload)
    finally:
        writer.close()


def raw_request(socket_path, payload, results, index):
    """Blocking AF_UNIX round-trip — the thread-client side of the
    mixed threads+asyncio single-flight test."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        sock.connect(socket_path)
        sock.sendall((json.dumps(payload) + "\n").encode())
        buffer = b""
        while not buffer.endswith(b"\n"):
            chunk = sock.recv(65536)
            if not chunk:
                break
            buffer += chunk
        results[index] = json.loads(buffer)
    finally:
        sock.close()


async def eventually(predicate, timeout_s=10.0, poll_s=0.005):
    """Await ``predicate()`` turning truthy; False on timeout."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout_s
    while not predicate():
        if loop.time() >= deadline:
            return False
        await asyncio.sleep(poll_s)
    return True


def cold_source_spec(tag):
    """A source-form job spec whose content hash is unique per tag."""
    return {"source": "(define (main) (+ 40 %d))" % tag,
            "processors": 1}
