"""Token-bucket rate limiting with an injected clock."""

from repro.serve.ratelimit import TokenBucket


class FakeClock:
    def __init__(self, t=100.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, seconds):
        self.t += seconds


class TestTokenBucket:
    def test_burst_defaults_to_rate(self):
        assert TokenBucket(8.0, clock=FakeClock()).burst == 8.0
        # ... but never below one whole token.
        assert TokenBucket(0.25, clock=FakeClock()).burst == 1.0

    def test_admits_until_burst_is_spent(self):
        bucket = TokenBucket(1.0, burst=3, clock=FakeClock())
        assert [bucket.try_acquire() for _ in range(4)] == [
            True, True, True, False]
        assert bucket.admitted == 3
        assert bucket.rejected == 1

    def test_refills_continuously_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(2.0, burst=2, clock=clock)
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.5)                      # +1 token
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(10.0, burst=2, clock=clock)
        clock.advance(60)
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_zero_rate_disables_limiting(self):
        bucket = TokenBucket(0.0, clock=FakeClock())
        assert all(bucket.try_acquire() for _ in range(1000))
        assert bucket.rejected == 0

    def test_cost_spends_multiple_tokens(self):
        bucket = TokenBucket(1.0, burst=5, clock=FakeClock())
        assert bucket.try_acquire(cost=4)
        assert not bucket.try_acquire(cost=2)
        assert bucket.try_acquire(cost=1)

    def test_clock_going_backwards_is_harmless(self):
        clock = FakeClock()
        bucket = TokenBucket(1.0, burst=1, clock=clock)
        assert bucket.try_acquire()
        clock.advance(-50)
        assert not bucket.try_acquire()
