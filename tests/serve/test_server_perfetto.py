"""The Perfetto server-timeline exporter over recorded request traces."""

import json

from repro.obs.perfetto import server_perfetto_trace


def trace_dict(trace_id, conn, start_us, spans, link=None, children=None,
               served="executed"):
    cursor = 0
    rendered = []
    for name, duration in spans:
        rendered.append({"name": name, "start_us": cursor,
                         "dur_us": duration})
        cursor += duration
    data = {"id": trace_id, "conn": conn, "request_id": trace_id,
            "start_us": start_us, "spans": rendered, "status": "ok",
            "served": served, "latency_us": cursor}
    if link is not None:
        data["link"] = link
    if children is not None:
        data["children"] = children
    return data


def sample_traces():
    leader = trace_dict(
        1, conn=1, start_us=1000,
        spans=[("parse", 10), ("admit", 5), ("validate", 20), ("hot", 5),
               ("queue", 100), ("execute", 2000), ("respond", 10)],
        children=[{"parent": "execute", "name": "compile", "dur_us": 300},
                  {"parent": "execute", "name": "run", "dur_us": 1500},
                  {"parent": "execute", "name": "store", "dur_us": 100}])
    follower = trace_dict(
        2, conn=2, start_us=1200,
        spans=[("parse", 8), ("admit", 4), ("validate", 15), ("hot", 4),
               ("flight", 1950), ("respond", 9)],
        link=1, served="deduped")
    # Overlapping second execution forces a second worker lane.
    parallel = trace_dict(
        3, conn=3, start_us=1100,
        spans=[("parse", 9), ("admit", 4), ("validate", 18), ("hot", 4),
               ("queue", 50), ("execute", 2500), ("respond", 11)])
    return [leader, follower, parallel]


class TestServerPerfetto:
    def test_connection_tracks_and_request_slices(self):
        doc = server_perfetto_trace(sample_traces())
        events = doc["traceEvents"]
        names = {(e["pid"], e.get("args", {}).get("name"))
                 for e in events if e["ph"] == "M"}
        assert (1, "connections") in names
        assert (2, "workers") in names
        assert (1, "conn 1") in names and (1, "conn 2") in names
        requests = [e for e in events
                    if e["ph"] == "X" and e.get("cat") == "request"]
        assert {e["name"] for e in requests} \
            == {"req 1", "req 2", "req 3"}
        leader = next(e for e in requests if e["name"] == "req 1")
        assert leader["ts"] == 1000
        assert leader["dur"] == 2150

    def test_overlapping_executions_get_distinct_worker_lanes(self):
        doc = server_perfetto_trace(sample_traces())
        executes = [e for e in doc["traceEvents"]
                    if e["ph"] == "X" and e.get("cat") == "execute"]
        assert len(executes) == 2
        assert len({e["tid"] for e in executes}) == 2
        workers = [e for e in doc["traceEvents"]
                   if e["ph"] == "X" and e.get("cat") == "worker"]
        assert [e["name"] for e in workers
                if e["tid"] == executes[0]["tid"]] \
            == ["compile", "run", "store"]

    def test_dedupe_flow_arrow_leader_to_follower(self):
        doc = server_perfetto_trace(sample_traces())
        flows = [e for e in doc["traceEvents"]
                 if e.get("cat") == "dedupe"]
        assert [e["ph"] for e in flows] == ["s", "f"]
        start, finish = flows
        assert start["tid"] == 1                 # leader's connection
        assert start["ts"] == 1000 + 10 + 5 + 20 + 5 + 100 + 2000
        assert finish["tid"] == 2                # follower's connection
        assert start["id"] == finish["id"]
        assert start["args"] == {"leader": 1, "follower": 2}

    def test_deterministic_and_json_clean(self):
        first = json.dumps(server_perfetto_trace(sample_traces()),
                           sort_keys=True)
        second = json.dumps(server_perfetto_trace(
            list(reversed(sample_traces()))), sort_keys=True)
        assert first == second

    def test_inflight_and_missing_leader_are_skipped(self):
        traces = sample_traces()[1:]             # follower without leader
        traces.append({"id": 9, "conn": 9, "start_us": 0, "inflight": True,
                       "spans": []})
        doc = server_perfetto_trace(traces)
        assert not [e for e in doc["traceEvents"]
                    if e.get("cat") == "dedupe"]
        assert doc["otherData"]["requests"] == 2
