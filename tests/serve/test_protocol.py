"""The NDJSON serve wire protocol: parsing, validation, shapes."""

import json

import pytest

from repro.errors import ServeRequestError
from repro.serve import protocol


class TestParseRequest:
    def test_bytes_line(self):
        request = protocol.parse_request(b'{"op": "ping", "id": 3}\n')
        assert request == {"op": "ping", "id": 3}

    def test_text_line(self):
        assert protocol.parse_request('{"op": "metrics"}') == {
            "op": "metrics"}

    def test_op_defaults_to_job(self):
        request = protocol.parse_request('{"job": {"program": "fib"}}')
        assert request.get("op", "job") == "job"

    def test_not_utf8(self):
        with pytest.raises(ServeRequestError) as err:
            protocol.parse_request(b"\xff\xfe{}")
        assert err.value.kind == "bad-json"

    def test_not_json(self):
        with pytest.raises(ServeRequestError) as err:
            protocol.parse_request("{nope")
        assert err.value.kind == "bad-json"

    def test_not_an_object(self):
        with pytest.raises(ServeRequestError) as err:
            protocol.parse_request("[1, 2]")
        assert err.value.kind == "bad-request"

    def test_unknown_op(self):
        with pytest.raises(ServeRequestError) as err:
            protocol.parse_request('{"op": "launch-missiles"}')
        assert err.value.kind == "bad-request"


class TestJobFromSpec:
    def test_named_workload_form(self):
        job = protocol.job_from_spec({
            "program": "fib", "system": "APRIL", "processors": 2,
            "args": [8]})
        assert job.config.num_processors == 2
        assert job.args == (8,)

    def test_source_form(self):
        job = protocol.job_from_spec({
            "source": "(define (main) 42)", "processors": 1})
        assert job.source == "(define (main) 42)"

    def test_spec_must_be_object(self):
        with pytest.raises(ServeRequestError) as err:
            protocol.job_from_spec("fib")
        assert err.value.kind == "bad-job"

    def test_needs_program_or_source(self):
        with pytest.raises(ServeRequestError) as err:
            protocol.job_from_spec({"args": [1]})
        assert err.value.kind == "bad-job"

    def test_unknown_program(self):
        with pytest.raises(ServeRequestError) as err:
            protocol.job_from_spec({"program": "doom"})
        assert err.value.kind == "bad-job"

    def test_unknown_source_key(self):
        with pytest.raises(ServeRequestError) as err:
            protocol.job_from_spec({"source": "(define (main) 1)",
                                    "procesors": 2})
        assert "procesors" in str(err.value)

    def test_empty_source(self):
        with pytest.raises(ServeRequestError):
            protocol.job_from_spec({"source": "   "})

    def test_bad_mode(self):
        with pytest.raises(ServeRequestError):
            protocol.job_from_spec({"source": "(define (main) 1)",
                                    "mode": "yolo"})

    def test_bad_args(self):
        with pytest.raises(ServeRequestError):
            protocol.job_from_spec({"source": "(define (main) 1)",
                                    "args": ["eight"]})

    def test_bad_processors(self):
        for bad in (0, -1, "two"):
            with pytest.raises(ServeRequestError):
                protocol.job_from_spec({"source": "(define (main) 1)",
                                        "processors": bad})

    def test_bad_config(self):
        with pytest.raises(ServeRequestError):
            protocol.job_from_spec({"source": "(define (main) 1)",
                                    "config": [1]})


class TestCompileJob:
    def test_triple(self):
        job = protocol.job_from_spec({"source": "(define (main) 42)"})
        content_hash, payload, cacheable = protocol.compile_job(job)
        assert len(content_hash) == 64
        assert payload["kind"] == "mult"
        assert cacheable is True

    def test_same_spec_same_hash(self):
        spec = {"program": "fib", "processors": 1, "args": [6]}
        first = protocol.compile_job(protocol.job_from_spec(spec))
        second = protocol.compile_job(protocol.job_from_spec(spec))
        assert first[0] == second[0]

    def test_compile_error_is_typed(self):
        job = protocol.job_from_spec({"source": "(define (main) (((("})
        with pytest.raises(ServeRequestError) as err:
            protocol.compile_job(job)
        assert err.value.kind == "bad-job"


class TestResponses:
    def test_encode_is_one_json_line(self):
        data = protocol.encode({"id": 1, "status": "ok"})
        assert data.endswith(b"\n")
        assert json.loads(data) == {"id": 1, "status": "ok"}

    def test_ok_response(self):
        response = protocol.ok_response(9, "h" * 64, {"status": "ok"},
                                        served="hit")
        assert response == {"id": 9, "status": "ok", "hash": "h" * 64,
                            "served": "hit", "result": {"status": "ok"}}

    def test_failed_response_carries_kind(self):
        response = protocol.failed_response(
            1, "h", {"status": "failed", "kind": "timeout",
                     "message": "too slow", "context": {"at": 5}},
            served="executed")
        assert response["status"] == "failed"
        assert response["kind"] == "timeout"
        assert response["context"] == {"at": 5}

    def test_rejected_response(self):
        response = protocol.rejected_response(2, "overloaded", "full")
        assert response["status"] == "rejected"
        assert response["kind"] == "overloaded"

    def test_error_response_reads_exception_kind(self):
        exc = ServeRequestError("nope", kind="bad-job")
        response = protocol.error_response(None, exc)
        assert response == {"id": None, "status": "error",
                            "kind": "bad-job", "message": "nope"}
