"""Request tracing: exact span tiling, the flight recorder, slow log.

The unit tests drive :class:`RequestTrace`/:class:`TraceStore` with a
fake clock; the end-to-end tests run the real server over a unix
socket in *both* dispatcher modes and assert the tentpole invariant
from the wire: the span durations of a served request sum to its
recorded service latency **exactly** — integer microseconds, no
"other" bucket — and a completed trace pulled twice renders
byte-identically.
"""

import asyncio
import json

from repro.exp.job import canonical_json
from repro.serve.dispatch import Dispatcher
from repro.serve.server import SweepServer
from repro.serve.trace import RequestTrace, SlowLog, TraceStore

from tests.serve import harness


class FakeClock:
    def __init__(self, t=100.0):
        self.t = t

    def __call__(self):
        return self.t


def make_server(socket_path, **overrides):
    overrides.setdefault("cache", None)
    overrides.setdefault(
        "dispatcher", Dispatcher(workers=2, mode="thread"))
    return SweepServer(socket_path=socket_path, **overrides)


def assert_tiles_exactly(trace_dict):
    """The invariant: spans tile [0, latency_us] with no gap/overlap."""
    cursor = 0
    for span in trace_dict["spans"]:
        assert span["start_us"] == cursor
        assert span["dur_us"] >= 0
        cursor += span["dur_us"]
    assert cursor == trace_dict["latency_us"]
    assert sum(span["dur_us"] for span in trace_dict["spans"]) \
        == trace_dict["latency_us"]


class TestRequestTrace:
    def test_spans_tile_latency_exactly(self):
        clock = FakeClock()
        trace = RequestTrace(1, conn=7, clock=clock)
        clock.t += 0.000_010
        trace.mark("parse")
        clock.t += 0.000_025
        trace.mark("admit")
        clock.t += 0.001_000
        trace.finish("ok", served="hit")
        assert trace.latency_us == 1035
        assert trace.spans() == [("parse", 0, 10), ("admit", 10, 25),
                                 ("respond", 35, 1000)]
        assert_tiles_exactly(trace.to_dict())

    def test_mark_split_uses_worker_time(self):
        clock = FakeClock()
        trace = RequestTrace(1, conn=1, clock=clock)
        clock.t += 0.000_100
        trace.mark("hot")
        clock.t += 0.000_900          # 300us queued + 600us executing
        trace.mark_split("queue", "execute", 600)
        assert trace.spans() == [("hot", 0, 100), ("queue", 100, 300),
                                 ("execute", 400, 600)]

    def test_mark_split_clamps_worker_overreport(self):
        """A worker clock reading longer than the whole segment cannot
        push the split before the previous boundary."""
        clock = FakeClock()
        trace = RequestTrace(1, conn=1, clock=clock)
        clock.t += 0.000_100
        trace.mark("hot")
        clock.t += 0.000_200
        trace.mark_split("queue", "execute", 5_000_000)
        assert trace.spans() == [("hot", 0, 100), ("queue", 100, 0),
                                 ("execute", 100, 200)]
        assert trace.latency_us == 300

    def test_mark_split_without_worker_report(self):
        """Timeout/crash: no worker time, the segment stays one span."""
        clock = FakeClock()
        trace = RequestTrace(1, conn=1, clock=clock)
        clock.t += 0.000_500
        trace.mark_split("queue", "execute", None)
        assert trace.spans() == [("execute", 0, 500)]

    def test_finish_freezes(self):
        clock = FakeClock()
        trace = RequestTrace(1, conn=1, clock=clock)
        trace.finish("ok")
        latency = trace.latency_us
        clock.t += 5.0
        trace.mark("late")
        trace.child("execute", "late", 99)
        trace.finish("failed")
        assert trace.latency_us == latency
        assert trace.status == "ok"
        assert trace.children == []

    def test_to_dict_inflight_has_age(self):
        clock = FakeClock()
        trace = RequestTrace(3, conn=2, clock=clock)
        clock.t += 0.25
        data = trace.to_dict(now_us=int(clock.t * 1_000_000))
        assert data["inflight"] is True
        assert data["age_us"] == 250_000
        assert "latency_us" not in data


class TestTraceStore:
    def finished(self, store, conn, latency_us=100):
        trace = store.begin(conn)
        store._clock.t += latency_us / 1_000_000
        trace.finish("ok", served="hit")
        store.record(trace)
        return trace

    def make_store(self, **kwargs):
        return TraceStore(clock=FakeClock(), **kwargs)

    def test_ring_evicts_oldest_first(self):
        store = self.make_store(per_conn=3)
        ids = [self.finished(store, conn=1).id for _ in range(5)]
        kept = [trace.id for trace in store.completed()]
        assert kept == ids[-3:]          # oldest two gone, order kept
        assert store.evicted == 2
        assert store.recorded == 5

    def test_retire_folds_into_bounded_retired_ring(self):
        store = self.make_store(per_conn=8, retired=4)
        for conn in (1, 2):
            for _ in range(3):
                self.finished(store, conn=conn)
        store.retire_conn(1)
        store.retire_conn(2)
        assert store.rings == {}
        kept = [trace.id for trace in store.completed()]
        assert kept == [3, 4, 5, 6]      # oldest of six evicted first
        assert store.evicted == 2

    def test_find_last_slowest(self):
        store = self.make_store()
        slow = self.finished(store, conn=1, latency_us=900)
        fast = self.finished(store, conn=1, latency_us=10)
        assert store.find(slow.id) is slow
        assert store.find(9999) is None
        assert [t.id for t in store.last(1)] == [fast.id]
        assert [t.id for t in store.slowest(2)] == [slow.id, fast.id]

    def test_discard_forgets_inflight(self):
        store = self.make_store()
        trace = store.begin(conn=1)
        assert store.stats()["inflight"] == 1
        store.discard(trace)
        assert store.stats() == {"inflight": 0, "stored": 0,
                                 "recorded": 0, "evicted": 0}


class TestSlowLog:
    def test_logs_only_over_threshold_as_ndjson(self, tmp_path):
        path = str(tmp_path / "slow.ndjson")
        log = SlowLog(path, slow_ms=0.5)
        clock = FakeClock()
        fast = RequestTrace(1, conn=1, clock=clock)
        clock.t += 0.000_100
        fast.finish("ok")
        slow = RequestTrace(2, conn=1, clock=clock)
        clock.t += 0.002
        slow.finish("ok", served="executed")
        assert log.maybe_log(fast) is False
        assert log.maybe_log(slow) is True
        log.close()
        lines = open(path).read().splitlines()
        assert len(lines) == 1 == log.logged
        entry = json.loads(lines[0])
        assert entry["id"] == 2
        assert entry["latency_us"] == 2000
        assert lines[0] == canonical_json(slow.to_dict())


class TestEndToEnd:
    def run_traced_job(self, tmp_path, dispatcher):
        socket_path = str(tmp_path / "april.sock")

        async def scenario():
            server = make_server(socket_path, dispatcher=dispatcher)

            async def client():
                reader, writer = await harness.connect(socket_path)
                response = await harness.request(
                    reader, writer,
                    {"op": "job", "id": 1,
                     "job": harness.cold_source_spec(41)})
                pull = {"op": "trace", "id": "t",
                        "trace_id": response["trace"]}
                writer.write((json.dumps(pull) + "\n").encode())
                writer.write((json.dumps(pull) + "\n").encode())
                await writer.drain()
                first_line = await reader.readline()
                second_line = await reader.readline()
                writer.close()
                return response, first_line, second_line

            return await harness.serving(server, client)

        return harness.run(scenario())

    def test_spans_tile_latency_thread_mode(self, tmp_path):
        response, line, again = self.run_traced_job(
            tmp_path, Dispatcher(workers=2, mode="thread"))
        assert (response["status"], response["served"]) \
            == ("ok", "executed")
        trace = json.loads(line)["traces"][0]
        assert_tiles_exactly(trace)
        assert trace["latency_us"] == response["latency_us"]
        names = [span["name"] for span in trace["spans"]]
        assert names == ["parse", "admit", "validate", "hot",
                         "queue", "execute", "respond"]
        assert trace["status"] == "ok"
        assert trace["served"] == "executed"
        assert trace["flush_us"] >= 0

    def test_trace_pulls_are_byte_identical(self, tmp_path):
        _, line, again = self.run_traced_job(
            tmp_path, Dispatcher(workers=2, mode="thread"))
        assert line == again

    def test_spans_tile_latency_process_mode(self, tmp_path):
        """The worker sub-spans cross a real process boundary and the
        tiling still holds — only durations travel, never clocks."""
        response, line, _ = self.run_traced_job(
            tmp_path, Dispatcher(workers=1, mode="process"))
        assert (response["status"], response["served"]) \
            == ("ok", "executed")
        trace = json.loads(line)["traces"][0]
        assert_tiles_exactly(trace)
        assert trace["latency_us"] == response["latency_us"]
        children = trace["children"]
        assert [child["name"] for child in children] \
            == ["compile", "run", "store"]
        assert all(child["parent"] == "execute" for child in children)
        execute = next(span for span in trace["spans"]
                       if span["name"] == "execute")
        assert sum(child["dur_us"] for child in children) \
            <= trace["latency_us"]
        assert execute["dur_us"] > 0

    def test_hit_trace_has_no_execute_span(self, tmp_path):
        socket_path = str(tmp_path / "april.sock")

        async def scenario():
            server = make_server(socket_path)

            async def client():
                reader, writer = await harness.connect(socket_path)
                spec = harness.cold_source_spec(42)
                await harness.request(
                    reader, writer, {"op": "job", "id": 1, "job": spec})
                hit = await harness.request(
                    reader, writer, {"op": "job", "id": 2, "job": spec})
                pull = await harness.request(
                    reader, writer,
                    {"op": "trace", "id": "t", "trace_id": hit["trace"]})
                writer.close()
                return hit, pull

            return await harness.serving(server, client)

        hit, pull = harness.run(scenario())
        assert hit["served"] == "hit"
        trace = pull["traces"][0]
        assert_tiles_exactly(trace)
        assert [span["name"] for span in trace["spans"]] \
            == ["parse", "admit", "validate", "hot", "respond"]

    def test_follower_links_to_leader(self, tmp_path):
        """A deduped follower's trace carries the leader's trace id and
        one 'flight' span covering its whole wait."""
        socket_path = str(tmp_path / "april.sock")

        async def scenario():
            dispatcher = harness.GatedDispatcher(workers=2)
            server = make_server(socket_path, dispatcher=dispatcher)

            async def client():
                spec = harness.cold_source_spec(43)
                reader, writer = await harness.connect(socket_path)
                writer.write(
                    (json.dumps({"op": "job", "id": 1, "job": spec})
                     + "\n").encode())
                await writer.drain()
                assert await harness.eventually(
                    lambda: dispatcher.calls == 1)
                writer.write(
                    (json.dumps({"op": "job", "id": 2, "job": spec})
                     + "\n").encode())
                await writer.drain()
                assert await harness.eventually(
                    lambda: server.flights.deduped == 1)
                dispatcher.gate.set()
                responses = [json.loads(await reader.readline())
                             for _ in range(2)]
                by_served = {r["served"]: r for r in responses}
                pulls = {}
                for served, response in by_served.items():
                    pulls[served] = await harness.request(
                        reader, writer,
                        {"op": "trace", "id": "t",
                         "trace_id": response["trace"]})
                writer.close()
                return by_served, pulls

            return await harness.serving(server, client)

        by_served, pulls = harness.run(scenario())
        leader = pulls["executed"]["traces"][0]
        follower = pulls["deduped"]["traces"][0]
        assert follower["link"] == leader["id"]
        assert "link" not in leader
        assert_tiles_exactly(follower)
        names = [span["name"] for span in follower["spans"]]
        assert "flight" in names and "execute" not in names
        assert "execute" in [span["name"] for span in leader["spans"]]

    def test_introspection_ops_are_not_recorded(self, tmp_path):
        socket_path = str(tmp_path / "april.sock")

        async def scenario():
            server = make_server(socket_path)

            async def client():
                reader, writer = await harness.connect(socket_path)
                await harness.request(reader, writer,
                                      {"op": "ping", "id": 1})
                await harness.request(reader, writer,
                                      {"op": "metrics", "id": 2})
                pull = await harness.request(
                    reader, writer, {"op": "trace", "id": 3})
                writer.close()
                return pull, server

            return await harness.serving(server, client)

        pull, server = harness.run(scenario())
        assert pull["enabled"] is True
        assert pull["traces"] == []
        assert pull["stats"]["recorded"] == 0
        assert pull["stats"]["inflight"] == 0

    def test_inflight_requests_visible_via_trace_op(self, tmp_path):
        socket_path = str(tmp_path / "april.sock")

        async def scenario():
            dispatcher = harness.GatedDispatcher(workers=2)
            server = make_server(socket_path, dispatcher=dispatcher)

            async def client():
                reader, writer = await harness.connect(socket_path)
                writer.write(
                    (json.dumps({"op": "job", "id": 1,
                                 "job": harness.cold_source_spec(44)})
                     + "\n").encode())
                await writer.drain()
                assert await harness.eventually(
                    lambda: dispatcher.calls == 1)
                pull = await harness.request(
                    reader, writer, {"op": "trace", "id": "t"})
                dispatcher.gate.set()
                await reader.readline()
                writer.close()
                return pull

            return await harness.serving(server, client)

        pull = harness.run(scenario())
        assert len(pull["inflight"]) == 1
        entry = pull["inflight"][0]
        assert entry["inflight"] is True
        assert entry["age_us"] >= 0
        # The ladder marks up to the hot-LRU probe are already visible.
        assert [span["name"] for span in entry["spans"]] \
            == ["parse", "admit", "validate", "hot"]

    def test_tracing_disabled_still_serves(self, tmp_path):
        socket_path = str(tmp_path / "april.sock")

        async def scenario():
            server = make_server(socket_path, trace_ring=0)

            async def client():
                reader, writer = await harness.connect(socket_path)
                response = await harness.request(
                    reader, writer,
                    {"op": "job", "id": 1,
                     "job": harness.cold_source_spec(45)})
                pull = await harness.request(
                    reader, writer, {"op": "trace", "id": 2})
                writer.close()
                return response, pull

            return await harness.serving(server, client)

        response, pull = harness.run(scenario())
        assert response["status"] == "ok"
        assert "trace" not in response
        assert response["latency_us"] >= 0
        assert pull["enabled"] is False

    def test_slow_log_captures_server_requests(self, tmp_path):
        socket_path = str(tmp_path / "april.sock")
        log_path = str(tmp_path / "slow.ndjson")

        async def scenario():
            server = make_server(socket_path, slow_log=log_path,
                                 slow_ms=0.0)

            async def client():
                reader, writer = await harness.connect(socket_path)
                response = await harness.request(
                    reader, writer,
                    {"op": "job", "id": 1,
                     "job": harness.cold_source_spec(46)})
                writer.close()
                return response

            return await harness.serving(server, client)

        response = harness.run(scenario())
        lines = open(log_path).read().splitlines()
        assert len(lines) == 1
        entry = json.loads(lines[0])
        assert entry["id"] == response["trace"]
        assert entry["latency_us"] == response["latency_us"]

    def test_metrics_snapshot_has_trace_section(self, tmp_path):
        socket_path = str(tmp_path / "april.sock")

        async def scenario():
            server = make_server(socket_path)

            async def client():
                reader, writer = await harness.connect(socket_path)
                await harness.request(
                    reader, writer,
                    {"op": "job", "id": 1,
                     "job": harness.cold_source_spec(47)})
                response = await harness.request(
                    reader, writer, {"op": "metrics", "id": 2})
                writer.close()
                return response

            return await harness.serving(server, client)

        metrics = harness.run(scenario())["metrics"]
        assert metrics["trace"]["recorded"] == 1
        assert metrics["trace"]["inflight"] == 0
