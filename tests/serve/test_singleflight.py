"""Single-flight collapsing: one execution, N-1 followers.

The unit half exercises :class:`repro.serve.flight.SingleFlight`
directly; the end-to-end half proves the headline property through the
real server: concurrent identical requests from *mixed* clients —
blocking-socket threads and asyncio connections — produce exactly one
execution, N-1 ``deduped`` responses, and byte-identical payloads;
and a failing leader shares its typed failure with every follower
instead of hanging them or re-executing.
"""

import asyncio
import threading

from repro.exp.job import canonical_json
from repro.serve.flight import SingleFlight
from repro.serve.server import SweepServer

from tests.serve import harness


class TestSingleFlightUnit:
    def test_leader_runs_factory_once(self):
        async def scenario():
            flights = SingleFlight()
            calls = []
            gate = asyncio.Event()

            async def execute():
                calls.append(1)
                await gate.wait()
                return {"status": "ok", "value": 42}

            waiters = [asyncio.ensure_future(
                flights.run("hash", execute)) for _ in range(8)]
            assert await harness.eventually(lambda: flights.deduped == 7)
            assert len(flights) == 1
            gate.set()
            outcomes = await asyncio.gather(*waiters)
            return calls, outcomes, flights

        calls, outcomes, flights = harness.run(scenario())
        assert len(calls) == 1
        assert flights.started == 1
        assert flights.deduped == 7
        results = [result for result, _leader in outcomes]
        assert all(result is results[0] for result in results)
        assert sorted(leader for _result, leader in outcomes) == (
            [False] * 7 + [True])
        assert len(flights) == 0            # table empty after landing

    def test_sequential_requests_each_lead(self):
        async def scenario():
            flights = SingleFlight()

            async def execute():
                return {"status": "ok"}

            first = await flights.run("k", execute)
            second = await flights.run("k", execute)
            return first, second, flights

        first, second, flights = harness.run(scenario())
        assert first[1] and second[1]       # no open flight to join
        assert flights.started == 2
        assert flights.deduped == 0

    def test_failure_payload_is_shared(self):
        async def scenario():
            flights = SingleFlight()
            gate = asyncio.Event()

            async def execute():
                await gate.wait()
                return {"status": "failed", "kind": "timeout",
                        "message": "too slow"}

            waiters = [asyncio.ensure_future(flights.run("k", execute))
                       for _ in range(3)]
            assert await harness.eventually(lambda: flights.deduped == 2)
            gate.set()
            return await asyncio.gather(*waiters)

        outcomes = harness.run(scenario())
        assert all(result["kind"] == "timeout"
                   for result, _leader in outcomes)

    def test_cancelling_one_waiter_keeps_the_flight(self):
        async def scenario():
            flights = SingleFlight()
            gate = asyncio.Event()

            async def execute():
                await gate.wait()
                return {"status": "ok"}

            keeper = asyncio.ensure_future(flights.run("k", execute))
            leaver = asyncio.ensure_future(flights.run("k", execute))
            assert await harness.eventually(lambda: flights.deduped == 1)
            leaver.cancel()
            await asyncio.sleep(0.01)
            assert flights.cancelled == 0   # keeper still listening
            gate.set()
            result, _leader = await keeper
            return result, flights

        result, flights = harness.run(scenario())
        assert result == {"status": "ok"}
        assert flights.cancelled == 0

    def test_last_waiter_leaving_cancels_the_execution(self):
        async def scenario():
            flights = SingleFlight()
            gate = asyncio.Event()
            finished = []

            async def execute():
                await gate.wait()
                finished.append(1)
                return {"status": "ok"}

            waiters = [asyncio.ensure_future(flights.run("k", execute))
                       for _ in range(2)]
            assert await harness.eventually(lambda: flights.deduped == 1)
            for waiter in waiters:
                waiter.cancel()
            assert await harness.eventually(lambda: len(flights) == 0)
            return finished, flights

        finished, flights = harness.run(scenario())
        assert finished == []               # execution never completed
        assert flights.cancelled == 1

    def test_drain_returns_leftovers_at_deadline(self):
        async def scenario():
            flights = SingleFlight()
            gate = asyncio.Event()

            async def execute():
                await gate.wait()
                return {}

            waiter = asyncio.ensure_future(flights.run("k", execute))
            await asyncio.sleep(0)
            loop = asyncio.get_running_loop()
            leftover = await flights.drain(deadline=loop.time() + 0.05)
            gate.set()
            await waiter
            drained = await flights.drain(deadline=loop.time() + 1.0)
            return leftover, drained

        leftover, drained = harness.run(scenario())
        assert leftover == 1
        assert drained == 0


class TestSingleFlightEndToEnd:
    def test_mixed_thread_and_asyncio_clients_collapse(self, tmp_path):
        """50 concurrent identical cold requests — half from blocking
        socket threads, half from asyncio connections — execute once;
        the other 49 are deduped; every payload is byte-identical."""
        socket_path = str(tmp_path / "april.sock")
        threads_n, async_n = 25, 25
        spec = harness.cold_source_spec(7)

        async def scenario():
            dispatcher = harness.GatedDispatcher()
            server = SweepServer(socket_path=socket_path, cache=None,
                                 dispatcher=dispatcher)

            async def clients():
                thread_results = [None] * threads_n
                threads = [
                    threading.Thread(
                        target=harness.raw_request,
                        args=(socket_path,
                              {"op": "job", "id": "t%d" % index,
                               "job": spec},
                              thread_results, index))
                    for index in range(threads_n)]
                for thread in threads:
                    thread.start()
                tasks = [asyncio.ensure_future(harness.one_shot(
                    socket_path,
                    {"op": "job", "id": "a%d" % index, "job": spec}))
                    for index in range(async_n)]
                # Freeze: one leader in the pool, everyone else joined.
                assert await harness.eventually(
                    lambda: dispatcher.calls == 1
                    and server.flights.deduped == threads_n + async_n - 1)
                dispatcher.gate.set()
                async_results = await asyncio.gather(*tasks)
                assert await harness.eventually(
                    lambda: not any(t.is_alive() for t in threads))
                return thread_results + list(async_results), dispatcher

            return await harness.serving(server, clients)

        responses, dispatcher = harness.run(scenario())
        assert len(responses) == threads_n + async_n
        assert all(response["status"] == "ok" for response in responses)
        served = [response["served"] for response in responses]
        assert served.count("executed") == 1
        assert served.count("deduped") == threads_n + async_n - 1
        assert dispatcher.calls == 1        # the pool saw one job
        payloads = {canonical_json(response["result"])
                    for response in responses}
        assert len(payloads) == 1           # byte-identical results

    def test_leader_failure_reaches_every_follower(self, tmp_path):
        """A failing leader doesn't hang followers or re-execute: all
        N get the same typed failure from the one run."""
        socket_path = str(tmp_path / "april.sock")
        spec = {"source": "(define (main) 42)", "expect": 43,
                "processors": 1}

        async def scenario():
            dispatcher = harness.GatedDispatcher()
            server = SweepServer(socket_path=socket_path, cache=None,
                                 dispatcher=dispatcher)

            async def clients():
                tasks = [asyncio.ensure_future(harness.one_shot(
                    socket_path,
                    {"op": "job", "id": index, "job": spec}))
                    for index in range(5)]
                assert await harness.eventually(
                    lambda: dispatcher.calls == 1
                    and server.flights.deduped == 4)
                dispatcher.gate.set()
                return await asyncio.gather(*tasks), dispatcher

            return await harness.serving(server, clients)

        responses, dispatcher = harness.run(scenario())
        assert dispatcher.calls == 1
        assert all(response["status"] == "failed"
                   for response in responses)
        assert all(response["kind"] == "WorkloadCheckError"
                   for response in responses)
        served = sorted(response["served"] for response in responses)
        assert served == ["deduped"] * 4 + ["executed"]
