"""End-to-end ``SweepServer`` tests over a real unix socket.

Every test runs the real asyncio server with a thread-mode dispatcher
(the simulator is pure, so thread workers are exact) and talks the
real NDJSON protocol through a client connection — the ladder, the
guardrails, and the lifecycle are all exercised from the wire in.
"""

import asyncio
import json
import os

from repro.exp.cache import ResultCache
from repro.serve import protocol
from repro.serve.dispatch import Dispatcher
from repro.serve.server import SweepServer

from tests.serve import harness


class FakeClock:
    def __init__(self, t=1000.0):
        self.t = t

    def __call__(self):
        return self.t


def make_server(socket_path, **overrides):
    overrides.setdefault("cache", None)
    overrides.setdefault(
        "dispatcher", Dispatcher(workers=2, mode="thread"))
    return SweepServer(socket_path=socket_path, **overrides)


class TestOps:
    def test_ping(self, tmp_path):
        socket_path = str(tmp_path / "april.sock")

        async def scenario():
            server = make_server(socket_path)
            return await harness.serving(
                server,
                lambda: harness.one_shot(socket_path,
                                         {"op": "ping", "id": "p1"}))

        response = harness.run(scenario())
        assert response["status"] == "ok"
        assert response["id"] == "p1"
        assert response["protocol"] == protocol.PROTOCOL

    def test_metrics_op_reports_counters(self, tmp_path):
        socket_path = str(tmp_path / "april.sock")

        async def scenario():
            server = make_server(socket_path)

            async def client():
                reader, writer = await harness.connect(socket_path)
                await harness.request(
                    reader, writer,
                    {"op": "job", "id": 1,
                     "job": harness.cold_source_spec(1)})
                response = await harness.request(
                    reader, writer, {"op": "metrics", "id": 2})
                writer.close()
                return response

            return await harness.serving(server, client)

        response = harness.run(scenario())
        metrics = response["metrics"]
        assert metrics["counters"]["executed"] == 1
        assert metrics["counters"]["requests"] == 2
        assert metrics["queue"] == {"depth": 0, "limit": 64}
        assert metrics["workers"]["mode"] == "thread"
        assert metrics["latency_by_served"]["executed"]["count"] == 1


class TestLadder:
    def test_execute_then_hot_hit(self, tmp_path):
        socket_path = str(tmp_path / "april.sock")

        async def scenario():
            server = make_server(socket_path)

            async def client():
                reader, writer = await harness.connect(socket_path)
                spec = harness.cold_source_spec(2)
                first = await harness.request(
                    reader, writer, {"op": "job", "id": 1, "job": spec})
                second = await harness.request(
                    reader, writer, {"op": "job", "id": 2, "job": spec})
                writer.close()
                return first, second, server

            return await harness.serving(server, client)

        first, second, server = harness.run(scenario())
        assert (first["status"], first["served"]) == ("ok", "executed")
        assert (second["status"], second["served"]) == ("ok", "hit")
        assert first["result"] == second["result"]
        assert first["hash"] == second["hash"]
        assert server.metrics.counts["hit_hot"] == 1
        # The spec memo compiled the job once, not twice.
        assert server.specs.builds == 1
        assert server.specs.hits == 1

    def test_disk_cache_survives_restart(self, tmp_path):
        """A restarted server resumes warm from the shared disk cache."""
        socket_path = str(tmp_path / "april.sock")
        cache_root = str(tmp_path / "cache")
        spec = harness.cold_source_spec(3)

        async def scenario():
            first_server = make_server(socket_path,
                                       cache=ResultCache(cache_root))
            first = await harness.serving(
                first_server,
                lambda: harness.one_shot(
                    socket_path, {"op": "job", "id": 1, "job": spec}))
            second_server = make_server(socket_path,
                                        cache=ResultCache(cache_root))
            second = await harness.serving(
                second_server,
                lambda: harness.one_shot(
                    socket_path, {"op": "job", "id": 2, "job": spec}))
            return first, second, second_server

        first, second, second_server = harness.run(scenario())
        assert first["served"] == "executed"
        assert second["served"] == "hit"
        assert second["result"] == first["result"]
        assert second_server.metrics.counts["hit_disk"] == 1
        assert second_server.metrics.counts["executed"] == 0


class TestBadRequests:
    def test_bad_json_line(self, tmp_path):
        socket_path = str(tmp_path / "april.sock")

        async def scenario():
            server = make_server(socket_path)

            async def client():
                reader, writer = await harness.connect(socket_path)
                writer.write(b"{nope\n")
                response = json.loads(await reader.readline())
                writer.close()
                return response, server

            return await harness.serving(server, client)

        response, server = harness.run(scenario())
        assert response["status"] == "error"
        assert response["kind"] == "bad-json"
        assert server.metrics.counts["bad_requests"] == 1

    def test_bad_job_spec(self, tmp_path):
        socket_path = str(tmp_path / "april.sock")

        async def scenario():
            server = make_server(socket_path)
            return await harness.serving(
                server,
                lambda: harness.one_shot(
                    socket_path,
                    {"op": "job", "id": 4, "job": {"program": "doom"}}))

        response = harness.run(scenario())
        assert response["status"] == "error"
        assert response["kind"] == "bad-job"
        assert response["id"] == 4

    def test_oversized_line_is_refused(self, tmp_path):
        socket_path = str(tmp_path / "april.sock")

        async def scenario():
            server = make_server(socket_path)

            async def client():
                reader, writer = await harness.connect(socket_path)
                writer.write(b"x" * (protocol.MAX_LINE_BYTES + 64)
                             + b"\n")
                # No drain: the server stops reading once over the
                # limit, so the transport flushes what it can while we
                # read the error response concurrently.
                response = json.loads(await reader.readline())
                writer.close()
                return response

            return await harness.serving(server, client)

        response = harness.run(scenario())
        assert response["status"] == "error"
        assert "exceeds" in response["message"]


class TestGuardrails:
    def test_draining_rejects_new_jobs(self, tmp_path):
        socket_path = str(tmp_path / "april.sock")

        async def scenario():
            server = make_server(socket_path)

            async def client():
                reader, writer = await harness.connect(socket_path)
                # Round-trip once so the server has *accepted* this
                # connection before the listener closes.
                await harness.request(reader, writer, {"op": "ping"})
                server.begin_drain()
                response = await harness.request(
                    reader, writer,
                    {"op": "job", "id": 1,
                     "job": harness.cold_source_spec(4)})
                writer.close()
                return response, server

            return await harness.serving(server, client)

        response, server = harness.run(scenario())
        assert response["status"] == "rejected"
        assert response["kind"] == "draining"
        assert server.metrics.counts["rejected_draining"] == 1

    def test_queue_limit_rejects_new_leaders_not_followers(
            self, tmp_path):
        """At the admission limit, a *new* job is shed but a request
        joining an open flight rides along free."""
        socket_path = str(tmp_path / "april.sock")

        async def scenario():
            dispatcher = harness.GatedDispatcher()
            server = make_server(socket_path, queue_limit=1,
                                 dispatcher=dispatcher)

            async def client():
                reader, writer = await harness.connect(socket_path)
                spec_a = harness.cold_source_spec(5)
                writer.write((json.dumps(
                    {"op": "job", "id": "a1", "job": spec_a})
                    + "\n").encode())
                await writer.drain()
                assert await harness.eventually(
                    lambda: dispatcher.calls == 1)
                # Queue is now full: a different job is shed fast...
                shed = await harness.request(
                    reader, writer,
                    {"op": "job", "id": "b",
                     "job": harness.cold_source_spec(6)})
                # ...but the same job joins the open flight.
                writer.write((json.dumps(
                    {"op": "job", "id": "a2", "job": spec_a})
                    + "\n").encode())
                await writer.drain()
                assert await harness.eventually(
                    lambda: server.flights.deduped == 1)
                dispatcher.gate.set()
                by_id = {}
                for _ in range(2):
                    response = json.loads(await reader.readline())
                    by_id[response["id"]] = response
                writer.close()
                return shed, by_id, server

            return await harness.serving(server, client)

        shed, by_id, server = harness.run(scenario())
        assert shed["status"] == "rejected"
        assert shed["kind"] == "overloaded"
        assert server.metrics.counts["rejected_overload"] == 1
        assert by_id["a1"]["served"] == "executed"
        assert by_id["a2"]["served"] == "deduped"

    def test_token_bucket_sheds_then_refills(self, tmp_path):
        socket_path = str(tmp_path / "april.sock")
        clock = FakeClock()

        async def scenario():
            server = make_server(socket_path, rate=2.0, burst=2,
                                 clock=clock)

            async def client():
                reader, writer = await harness.connect(socket_path)
                spec = harness.cold_source_spec(8)
                responses = []
                for index in range(3):
                    responses.append(await harness.request(
                        reader, writer,
                        {"op": "job", "id": index, "job": spec}))
                clock.t += 1.0              # refills 2 tokens
                responses.append(await harness.request(
                    reader, writer,
                    {"op": "job", "id": 3, "job": spec}))
                writer.close()
                return responses, server

            return await harness.serving(server, client)

        responses, server = harness.run(scenario())
        assert [r["status"] for r in responses] == [
            "ok", "ok", "rejected", "ok"]
        assert responses[2]["kind"] == "rate-limited"
        assert [r["served"] for r in responses
                if r["status"] == "ok"] == ["executed", "hit", "hit"]
        assert server.metrics.counts["rejected_ratelimit"] == 1

    def test_disconnect_cancels_abandoned_flight(self, tmp_path):
        socket_path = str(tmp_path / "april.sock")

        async def scenario():
            dispatcher = harness.GatedDispatcher()
            server = make_server(socket_path, dispatcher=dispatcher)

            async def client():
                reader, writer = await harness.connect(socket_path)
                writer.write((json.dumps(
                    {"op": "job", "id": 1,
                     "job": harness.cold_source_spec(9)})
                    + "\n").encode())
                await writer.drain()
                assert await harness.eventually(
                    lambda: dispatcher.calls == 1)
                writer.close()              # walk away mid-execution
                assert await harness.eventually(
                    lambda: server.flights.cancelled == 1
                    and len(server.flights) == 0)
                return server

            return await harness.serving(server, client)

        server = harness.run(scenario())
        assert server.flights.cancelled == 1
        assert server.metrics_snapshot()["counters"]["cancelled"] == 1


class TestLifecycle:
    def test_stop_drains_clean_and_unlinks_socket(self, tmp_path):
        socket_path = str(tmp_path / "april.sock")

        async def scenario():
            server = make_server(socket_path)
            await server.start()
            assert os.path.exists(socket_path)
            response = await harness.one_shot(
                socket_path,
                {"op": "job", "id": 1,
                 "job": harness.cold_source_spec(10)})
            leftover = await server.stop(drain_timeout_s=2.0)
            return response, leftover

        response, leftover = harness.run(scenario())
        assert response["status"] == "ok"
        assert leftover == 0
        assert not os.path.exists(socket_path)

    def test_start_replaces_stale_socket_file(self, tmp_path):
        socket_path = str(tmp_path / "april.sock")

        async def scenario():
            with open(socket_path, "w") as handle:
                handle.write("")            # crashed predecessor's sock
            server = make_server(socket_path)
            return await harness.serving(
                server,
                lambda: harness.one_shot(socket_path, {"op": "ping"}))

        assert harness.run(scenario())["status"] == "ok"
