"""``april top`` rendering (pure, offline) and its live poll loop."""

import json

from repro.serve.dispatch import Dispatcher
from repro.serve.server import SweepServer
from repro.serve.top import poll, render_frame, run_top

from tests.serve import harness


def sample(requests=100, jobs=80, uptime=10.0):
    hist = {"count": 5, "p50": 120, "p90": 500, "p99": 900, "max": 1000}
    empty = {"count": 0, "p50": None, "p90": None, "p99": None,
             "max": None}
    return {
        "metrics": {
            "uptime_s": uptime,
            "protocol": "april-serve/1",
            "draining": False,
            "counters": {"requests": requests, "jobs": jobs,
                         "cache_hits": 40, "deduped": 10,
                         "rejected_overload": 0, "rejected_ratelimit": 0,
                         "rejected_draining": 0},
            "queue": {"depth": 3, "limit": 64},
            "workers": {"workers": 2, "busy": 1, "busy_fraction": 0.25},
            "connections": {"open": 4},
            "latency_by_served": {"hit": hist, "executed": hist,
                                  "deduped": empty, "failed": empty,
                                  "rejected": empty},
        },
        "trace": {
            "enabled": True,
            "stats": {"inflight": 1, "stored": 12, "recorded": 12,
                      "evicted": 0},
            "inflight": [{"id": 99, "conn": 2, "age_us": 1500,
                          "inflight": True,
                          "spans": [{"name": "parse", "start_us": 0,
                                     "dur_us": 10}]}],
            "traces": [{"id": 42, "conn": 1, "served": "executed",
                        "status": "ok", "latency_us": 2000,
                        "spans": [{"name": "execute", "start_us": 0,
                                   "dur_us": 2000}]}],
        },
    }


class TestRenderFrame:
    def test_frame_shows_the_essentials(self):
        frame = render_frame(sample())
        assert "10.0 req/s" in frame              # lifetime average
        assert "hit 50%" in frame                 # 40/80 jobs
        assert "queue: 3/64" in frame
        assert "1/2 busy" in frame
        assert "hit" in frame and "executed" in frame
        assert "#42" in frame and "execute=2000us" in frame
        assert "#99" in frame and "age" in frame

    def test_rates_use_counter_deltas_between_samples(self):
        previous = sample(requests=100, jobs=80)
        current = sample(requests=160, jobs=120, uptime=12.0)
        frame = render_frame(current, previous, interval_s=2.0)
        assert "30.0 req/s (20.0 jobs/s)" in frame

    def test_no_metrics(self):
        assert "no metrics" in render_frame({"metrics": None})

    def test_tracing_disabled(self):
        disabled = sample()
        disabled["trace"] = {"enabled": False, "traces": [],
                             "inflight": []}
        assert "tracing disabled" in render_frame(disabled)

    def test_no_completed_traces_yet(self):
        empty = sample()
        empty["trace"]["traces"] = []
        assert "(none recorded yet)" in render_frame(empty)


class TestLive:
    def test_poll_and_run_top_against_real_server(self, tmp_path):
        socket_path = str(tmp_path / "april.sock")

        async def scenario():
            server = SweepServer(
                socket_path=socket_path, cache=None,
                dispatcher=Dispatcher(workers=2, mode="thread"))

            async def client():
                reader, writer = await harness.connect(socket_path)
                await harness.request(
                    reader, writer,
                    {"op": "job", "id": 1,
                     "job": harness.cold_source_spec(60)})
                writer.close()
                frames = []
                rendered = await run_top(
                    socket_path=socket_path, interval_s=0.01, count=2,
                    plain=True, out=frames.append)
                one = await poll(socket_path=socket_path)
                return rendered, frames, one

            return await harness.serving(server, client)

        rendered, frames, one = harness.run(scenario())
        assert rendered == 2
        assert len(frames) == 2
        assert "april serve" in frames[0]
        assert "req/s" in frames[1]
        assert one["metrics"]["counters"]["executed"] == 1
        assert one["trace"]["enabled"] is True
        assert one["trace"]["stats"]["recorded"] == 1

    def test_run_top_reports_unreachable_server(self, tmp_path):
        out = []

        async def scenario():
            return await run_top(
                socket_path=str(tmp_path / "nope.sock"), count=1,
                plain=True, out=out.append)

        assert harness.run(scenario()) == 0
        assert "cannot reach server" in out[0]

    def test_frames_are_json_free_text(self):
        frame = render_frame(sample())
        try:
            json.loads(frame)
        except ValueError:
            return
        raise AssertionError("frame rendered as JSON, not a dashboard")
