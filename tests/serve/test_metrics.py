"""Server metrics: counters, per-axis histograms, exact rollups."""

from repro.obs.hist import Log2Histogram
from repro.serve.metrics import COUNTER_NAMES, SERVED_AXES, ServerMetrics


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


class TestCounters:
    def test_all_counters_start_at_zero(self):
        metrics = ServerMetrics(clock=FakeClock())
        assert set(metrics.counts) == set(COUNTER_NAMES)
        assert all(value == 0 for value in metrics.counts.values())

    def test_bump(self):
        metrics = ServerMetrics(clock=FakeClock())
        metrics.bump("requests")
        metrics.bump("deduped", 5)
        assert metrics.counts["requests"] == 1
        assert metrics.counts["deduped"] == 5

    def test_snapshot_computes_cache_hits(self):
        metrics = ServerMetrics(clock=FakeClock())
        metrics.bump("hit_hot", 3)
        metrics.bump("hit_disk", 2)
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["cache_hits"] == 5

    def test_snapshot_schema_is_stable_when_untouched(self):
        """Dashboards bind to all five served axes without key-probing:
        an untouched snapshot already carries each as an empty
        histogram."""
        snapshot = ServerMetrics(clock=FakeClock()).snapshot()
        assert set(snapshot["counters"]) == (
            set(COUNTER_NAMES) | {"cache_hits"})
        assert snapshot["latency_us"]["count"] == 0
        assert snapshot["latency_us"]["p99"] is None
        assert set(snapshot["latency_by_served"]) == set(SERVED_AXES)
        for axis in SERVED_AXES:
            assert snapshot["latency_by_served"][axis]["count"] == 0
            assert snapshot["latency_by_served"][axis]["p99"] is None

    def test_nonstandard_axis_still_appears_lazily(self):
        metrics = ServerMetrics(clock=FakeClock())
        metrics.observe("error", 5)
        by_served = metrics.snapshot()["latency_by_served"]
        assert set(by_served) == set(SERVED_AXES) | {"error"}
        assert by_served["error"]["count"] == 1


class TestLatencyRollup:
    def test_observe_keys_by_served_axis(self):
        metrics = ServerMetrics(clock=FakeClock())
        metrics.observe("hit", 10)
        metrics.observe("hit", 12)
        metrics.observe("executed", 50_000)
        assert metrics.by_served["hit"].count == 2
        assert metrics.by_served["executed"].count == 1

    def test_rollup_merges_retired_and_live_exactly(self):
        """The rollup's buckets equal those of one concatenated stream
        — per-connection histograms never average percentiles."""
        metrics = ServerMetrics(clock=FakeClock())
        closed = Log2Histogram()
        live = Log2Histogram()
        reference = Log2Histogram()
        for value in (3, 9, 81, 6561):
            metrics.observe("hit", value, closed)
            reference.record(value)
        for value in (2, 4, 8):
            metrics.observe("hit", value, live)
            reference.record(value)
        metrics.retire_connection(closed)
        rollup = metrics.rollup(live_hists=[live])
        assert rollup.counts == reference.counts
        assert rollup.count == reference.count
        for p in (50, 90, 99):
            assert rollup.percentile(p) == reference.percentile(p)

    def test_snapshot_splices_extra_sections(self):
        metrics = ServerMetrics(clock=FakeClock())
        snapshot = metrics.snapshot(queue={"depth": 2, "limit": 64},
                                    draining=False)
        assert snapshot["queue"] == {"depth": 2, "limit": 64}
        assert snapshot["draining"] is False

    def test_uptime_tracks_clock(self):
        clock = FakeClock()
        metrics = ServerMetrics(clock=clock)
        clock.t += 12.5
        assert metrics.snapshot()["uptime_s"] == 12.5
