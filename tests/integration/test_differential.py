"""Differential testing: randomly generated Mul-T programs must produce
the same value compiled-and-simulated as directly interpreted.

The generator builds small closed arithmetic/list programs from a
grammar; hypothesis shrinks any counterexample to a minimal program.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lang.interp import interpret
from repro.lang.run import run_mult

# -- expression grammar ------------------------------------------------------

_INT = st.integers(min_value=-50, max_value=50)


def _expressions(depth, variables):
    """Strategy for expressions over bound integer ``variables``."""
    leaves = [_INT.map(str)]
    if variables:
        leaves.append(st.sampled_from(sorted(variables)))
    leaf = st.one_of(*leaves)
    if depth <= 0:
        return leaf

    sub = _expressions(depth - 1, variables)

    def binop(op):
        return st.tuples(sub, sub).map(
            lambda pair: "(%s %s %s)" % (op, pair[0], pair[1]))

    def if_expr():
        cmp_op = st.sampled_from(["<", ">", "=", "<=", ">="])
        return st.tuples(cmp_op, sub, sub, sub, sub).map(
            lambda t: "(if (%s %s %s) %s %s)" % t)

    def let_expr():
        inner = _expressions(depth - 1, variables | {"v%d" % depth})
        return st.tuples(sub, inner).map(
            lambda pair: "(let ((v%d %s)) %s)" % (depth, pair[0], pair[1]))

    def guarded_div(op):
        # Divide by a non-zero constant to keep both backends defined.
        nonzero = st.integers(min_value=1, max_value=9)
        return st.tuples(sub, nonzero).map(
            lambda pair: "(%s %s %d)" % (op, pair[0], pair[1]))

    return st.one_of(
        leaf,
        binop("+"), binop("-"), binop("*" if depth < 2 else "+"),
        guarded_div("quotient"), guarded_div("remainder"),
        if_expr(),
        let_expr(),
    )


@st.composite
def programs(draw):
    body = draw(_expressions(3, {"a", "b"}))
    return "(define (main a b) %s)" % body


@st.composite
def future_programs(draw):
    body = draw(_expressions(2, {"a", "b"}))
    helper_body = draw(_expressions(2, {"x"}))
    return (
        "(define (helper x) %s)\n"
        "(define (main a b) (+ (future (helper a)) %s))"
        % (helper_body, body)
    )


_SETTINGS = settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestCompilerAgainstInterpreter:
    @_SETTINGS
    @given(programs(), st.integers(-20, 20), st.integers(-20, 20))
    def test_sequential_programs_agree(self, source, a, b):
        expected, _ = interpret(source, args=(a, b))
        result = run_mult(source, mode="sequential", args=(a, b))
        assert result.value == expected, source

    @_SETTINGS
    @given(future_programs(), st.integers(-10, 10), st.integers(-10, 10))
    def test_eager_futures_agree(self, source, a, b):
        expected, _ = interpret(source, args=(a, b))
        result = run_mult(source, mode="eager", processors=2, args=(a, b))
        assert result.value == expected, source

    @_SETTINGS
    @given(future_programs(), st.integers(-10, 10), st.integers(-10, 10))
    def test_lazy_futures_agree(self, source, a, b):
        expected, _ = interpret(source, args=(a, b))
        result = run_mult(source, mode="lazy", processors=2, args=(a, b))
        assert result.value == expected, source

    @_SETTINGS
    @given(programs(), st.integers(-20, 20), st.integers(-20, 20))
    def test_modes_agree_with_each_other(self, source, a, b):
        seq = run_mult(source, mode="sequential", args=(a, b))
        eager = run_mult(source, mode="eager", args=(a, b))
        assert seq.value == eager.value
