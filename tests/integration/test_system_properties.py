"""Cross-cutting system properties.

* **Toolchain fixpoint**: disassembling any encodable instruction and
  re-assembling the text reproduces the same 32-bit word, so listings
  are faithful.
* **Determinism**: the machine is a deterministic simulator — two runs
  of the same program produce bit-identical results and cycle counts,
  across every mode and processor count (this is what makes the
  cycle-count experiments meaningful).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.assembler import Assembler
from repro.isa.disassembler import disassemble_word
from repro.isa.encoding import IMM11_MAX, IMM11_MIN, IMM12_MAX, IMM12_MIN, encode
from repro.isa.instructions import (
    Category, Instruction, Opcode, category_of, render,
)
from repro.lang.run import run_mult

_REG = st.integers(min_value=0, max_value=39)
_ALU = [op for op in Opcode
        if category_of(op) in (Category.COMPUTE, Category.LOGIC)
        and op not in (Opcode.LUI, Opcode.ORIL)]
_MEM = [op for op in Opcode
        if category_of(op) in (Category.LOAD, Category.STORE)]


def _assemble_one(text):
    """Assemble one instruction line without the auto delay slot."""
    program = Assembler().assemble(text)
    return program.words[0]


class TestToolchainFixpoint:
    @given(st.sampled_from(_ALU), _REG, _REG, _REG)
    def test_alu_r_format(self, op, rd, rs1, rs2):
        # cmp discards its destination: canonicalize rd to 0 so the
        # listing (which omits it) round-trips exactly.
        instr = Instruction(op, rd=0 if op is Opcode.CMP else rd,
                            rs1=rs1, rs2=rs2)
        assert _assemble_one(render(instr)) == encode(instr)

    @given(st.sampled_from(_ALU), _REG, _REG,
           st.integers(min_value=IMM11_MIN, max_value=IMM11_MAX))
    def test_alu_i_format(self, op, rd, rs1, imm):
        instr = Instruction(op, rd=0 if op is Opcode.CMP else rd,
                            rs1=rs1, imm=imm, use_imm=True)
        assert _assemble_one(render(instr)) == encode(instr)

    @given(st.sampled_from(_MEM), _REG, _REG,
           st.integers(min_value=IMM12_MIN, max_value=IMM12_MAX))
    def test_memory_format(self, op, rd, rs1, imm):
        instr = Instruction(op, rd=rd, rs1=rs1, imm=imm, use_imm=True)
        assert _assemble_one(render(instr)) == encode(instr)

    def test_system_ops(self):
        for op in (Opcode.INCFP, Opcode.DECFP, Opcode.NOP, Opcode.HALT):
            instr = Instruction(op)
            assert _assemble_one(render(instr)) == encode(instr)

    def test_disassemble_word_matches_render(self):
        instr = Instruction(Opcode.LDETT, rd=3, rs1=14, imm=-8, use_imm=True)
        assert disassemble_word(encode(instr)) == render(instr)


FIB = """
(define (fib n)
  (if (< n 2) n (+ (future (fib (- n 1))) (future (fib (- n 2))))))
(define (main n) (fib n))
"""


class TestDeterminism:
    @pytest.mark.parametrize("mode,processors", [
        ("sequential", 1), ("eager", 1), ("eager", 4),
        ("lazy", 1), ("lazy", 4),
    ])
    def test_identical_reruns(self, mode, processors):
        first = run_mult(FIB, mode=mode, processors=processors, args=(9,))
        second = run_mult(FIB, mode=mode, processors=processors, args=(9,))
        assert first.value == second.value == 34
        assert first.cycles == second.cycles
        assert first.stats.instructions == second.stats.instructions
        assert first.stats.context_switches == second.stats.context_switches

    def test_coherent_mode_deterministic(self):
        from repro.machine.config import MachineConfig
        config = MachineConfig(num_processors=2, memory_mode="coherent")
        runs = [run_mult(FIB, mode="eager", args=(8,), config=config)
                for config in (config, config.replace())]
        assert runs[0].value == runs[1].value == 21
        assert runs[0].cycles == runs[1].cycles

    def test_model_deterministic(self):
        from repro.model.params import ModelParams
        from repro.model.utilization import utilization_curve
        a = utilization_curve(ModelParams(), max_threads=8)
        b = utilization_curve(ModelParams(), max_threads=8)
        assert a == b
