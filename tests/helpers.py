"""Shared test utilities: build a single processor over ideal memory."""

from repro.core.processor import Processor
from repro.core.traps import TrapAction
from repro.isa.assembler import assemble
from repro.mem.ideal import IdealMemoryPort
from repro.mem.memory import Memory

DEFAULT_MEMORY_WORDS = 1 << 16


def build_cpu(source, base=0, memory_words=DEFAULT_MEMORY_WORDS, latency=1):
    """Assemble source, load it, and return (cpu, memory, program).

    The processor's frame 0 starts at the program base with a thread-less
    frame; callers drive it with ``cpu.run()`` / ``cpu.step()``.
    """
    program = assemble(source, base=base)
    memory = Memory(memory_words)
    memory.load_program(program)
    cpu = Processor(port=IdealMemoryPort(memory, latency=latency))
    cpu.frame.pc = program.base
    cpu.frame.npc = program.base + 4
    return cpu, memory, program


def run_to_halt(cpu, max_steps=100000):
    """Step the processor until HALT; fail loudly on runaway programs."""
    steps = 0
    while not cpu.halted:
        cpu.step()
        steps += 1
        if steps > max_steps:
            raise AssertionError("program did not halt in %d steps" % max_steps)
    return cpu


def ignore_trap_handler(action=TrapAction.RESUME, cycles=0):
    """A trap handler that charges some cycles and returns an action."""
    def handler(cpu, frame, trap):
        if cycles:
            cpu.charge(cycles, "trap")
        return action
    return handler
